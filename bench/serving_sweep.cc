/**
 * @file
 * Always-on serving sweep: offered load vs tail latency and goodput.
 *
 * Two measurements over one corpus:
 *
 *  1. Saturation capacity per pipeline mode. Offer the whole query
 *     stream effectively at once (Block admission, absurd QPS) and
 *     measure the achieved completion rate — the sustained QPS the
 *     pipeline can drain. Pipelined mode overlaps the serial device
 *     replay + merge of finished queries with concurrent host builds
 *     of later ones; Barrier mode (build-then-finish per query, the
 *     old batch pattern) is the ablation baseline. The overlap win
 *     is the ratio of the two capacities.
 *
 *  2. An open-loop sweep stepping offered load across fractions of
 *     the measured pipelined capacity (well below the knee to 1.5x
 *     past it), both modes at every point, Poisson arrivals, a
 *     fixed deadline SLO. Each point reports achieved QPS, goodput
 *     (completions within deadline), and exact p50/p99/p999 latency
 *     measured from the *scheduled* arrival — so queueing delay
 *     past the knee shows up as the latency explosion it is.
 *
 * Output: a table per mode on stdout and BENCH_serving.json with a
 * "pipelined" and a "barrier" group (subgroup per load point) plus
 * an "ablation" group with the capacity comparison and the max
 * sustained QPS at equal p99 SLO.
 */

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "benchutil.h"
#include "boss/device.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "serve/backend.h"
#include "serve/server.h"

namespace
{

using namespace boss;

struct Point
{
    double loadFraction;
    serve::ServeReport report;
};

const char *
modeName(serve::PipelineMode mode)
{
    return mode == serve::PipelineMode::Pipelined ? "pipelined"
                                                  : "barrier";
}

/** Saturation: everything arrives at once, nothing is refused. */
double
measureCapacityQps(serve::Backend &backend,
                   const std::vector<workload::Query> &queries,
                   serve::PipelineMode mode)
{
    serve::ServeConfig cfg;
    cfg.arrivals.qps = 5e6; // back-to-back; drain rate is the cap
    cfg.arrivals.count = 2000;
    cfg.arrivals.seed = 11;
    cfg.policy = serve::ShedPolicy::Block;
    cfg.queueCapacity = 512;
    cfg.mode = mode;
    cfg.warmup = 64;
    serve::Server server(backend, cfg);
    auto report = server.run(queries);
    BOSS_ASSERT(report.completed == report.offered,
                "saturation run shed or expired queries");
    return report.achievedQps;
}

serve::ServeReport
runPoint(serve::Backend &backend,
         const std::vector<workload::Query> &queries,
         serve::PipelineMode mode, double offeredQps,
         double deadlineUs, std::uint64_t seed)
{
    serve::ServeConfig cfg;
    cfg.arrivals.qps = offeredQps;
    // ~0.75 s of offered load per point, bounded so low-rate points
    // still finish quickly and high-rate points stay cheap.
    cfg.arrivals.count = static_cast<std::size_t>(std::clamp(
        offeredQps * 0.75, 1000.0, 20000.0));
    cfg.arrivals.seed = seed;
    // Overload control: a small admission queue (shed, don't wait)
    // and a tight in-flight budget, so past the knee the tail
    // reflects executor behavior, not unbounded queue growth.
    cfg.policy = serve::ShedPolicy::DropTail;
    cfg.queueCapacity = 32;
    cfg.maxInFlight = 8;
    cfg.mode = mode;
    cfg.deadlineUs = deadlineUs;
    cfg.warmup = 64;
    serve::Server server(backend, cfg);
    return server.run(queries);
}

/** Completions within @p sloUs of their scheduled arrival. */
std::uint64_t
goodAtSlo(const serve::ServeReport &r, double sloUs)
{
    std::uint64_t good = 0;
    for (const auto &rec : r.records) {
        if (rec.status == serve::QueryStatus::Done &&
            rec.finishUs - rec.arrivalUs <= sloUs)
            ++good;
    }
    return good;
}

/** Post-hoc goodput: completions within @p sloUs, per second. */
double
goodputAtSlo(const serve::ServeReport &r, double sloUs)
{
    if (r.elapsedUs <= 0.0)
        return 0.0;
    return static_cast<double>(goodAtSlo(r, sloUs)) / r.elapsedUs *
           1e6;
}

/** Highest achieved QPS among points whose p99 meets @p sloUs. */
double
sustainedAtSlo(const std::vector<Point> &points, double sloUs)
{
    double best = 0.0;
    for (const Point &p : points)
        if (p.report.latencyP99Us <= sloUs)
            best = std::max(best, p.report.achievedQps);
    return best;
}

} // namespace

int
main()
{
    common::ThreadPool::setGlobalThreads(
        std::max(1u, std::thread::hardware_concurrency()));

    workload::CorpusConfig cfg;
    cfg.name = "serving-sweep";
    cfg.numDocs = 60'000;
    cfg.vocabSize = 1'000;
    cfg.seed = 42;
    workload::Corpus corpus(cfg);

    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    qcfg.seed = 7;
    auto queries = workload::sampleQueries(qcfg, 96);
    auto terms = workload::collectTerms(queries);

    accel::Device device;
    device.loadIndex(corpus.buildIndex(terms));
    serve::DeviceBackend backend(device);

    std::printf("corpus: %u docs, vocab %u; %zu distinct queries\n",
                cfg.numDocs, cfg.vocabSize, queries.size());

    // --- 1. Saturation capacity per mode (the ablation headline).
    double capBarrier = measureCapacityQps(
        backend, queries, serve::PipelineMode::Barrier);
    double capPipelined = measureCapacityQps(
        backend, queries, serve::PipelineMode::Pipelined);
    std::printf("saturated capacity: pipelined %.0f qps, barrier "
                "%.0f qps\n",
                capPipelined, capBarrier);

    // --- 2. Offered-load sweep: both modes back to back at each
    // fraction of the pipelined capacity, so wall-clock noise that
    // drifts over the sweep hits both curves alike. No deadline is
    // imposed during the run — goodput is computed afterwards from
    // the per-query records against the equal-p99 SLO below.
    const std::vector<double> fractions = {0.3, 0.5, 0.7,  0.85,
                                           1.0, 1.2, 1.5};
    std::vector<std::vector<Point>> sweeps(2);
    const double inf = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        double offered = fractions[i] * capPipelined;
        for (std::size_t m = 0; m < 2; ++m) {
            Point p;
            p.loadFraction = fractions[i];
            p.report = runPoint(
                backend, queries,
                m == 0 ? serve::PipelineMode::Pipelined
                       : serve::PipelineMode::Barrier,
                offered, inf, 100 + i);
            sweeps[m].push_back(std::move(p));
        }
    }

    // Equal-p99 SLO: the worst tail the pipelined executor shows
    // anywhere in the sweep — an SLO it holds at every offered
    // load, including 1.5x past saturation. The ablation question
    // is then how much load the barrier baseline sustains under
    // the same bar.
    double sloUs = 1000.0;
    for (const Point &p : sweeps[0])
        sloUs = std::max(sloUs, p.report.latencyP99Us);

    for (std::size_t m = 0; m < 2; ++m) {
        std::printf("\n%s:\n", modeName(m == 0
                                            ? serve::PipelineMode::
                                                  Pipelined
                                            : serve::PipelineMode::
                                                  Barrier));
        std::printf("%-8s %12s %12s %12s %10s %10s %10s %7s\n",
                    "load", "offered", "achieved", "goodput",
                    "p50 us", "p99 us", "p999 us", "done");
        for (const Point &p : sweeps[m]) {
            const serve::ServeReport &r = p.report;
            std::printf(
                "%-8.2f %12.0f %12.0f %12.0f %10.1f %10.1f %10.1f "
                "%7llu\n",
                p.loadFraction, r.offeredQps, r.achievedQps,
                goodputAtSlo(r, sloUs), r.latencyP50Us,
                r.latencyP99Us, r.latencyP999Us,
                static_cast<unsigned long long>(r.completed));
        }
    }

    double sustPipelined = sustainedAtSlo(sweeps[0], sloUs);
    double sustBarrier = sustainedAtSlo(sweeps[1], sloUs);
    std::printf("\nsustained qps at p99 <= %.0f us: pipelined %.0f, "
                "barrier %.0f (overlap win %.2fx)\n",
                sloUs, sustPipelined, sustBarrier,
                sustPipelined / sustBarrier);
    BOSS_ASSERT(sustPipelined > sustBarrier,
                "pipelined failed to beat the barrier baseline on "
                "sustained qps at equal p99");

    // --- JSON report.
    bench::JsonReport report("serving");
    report.set(report.root(), "num_docs",
               static_cast<double>(cfg.numDocs), "corpus documents");
    report.set(report.root(), "distinct_queries",
               static_cast<double>(queries.size()),
               "distinct queries cycled by the generator");
    report.set(report.root(), "slo_us", sloUs,
               "equal-p99 SLO: worst pipelined p99 in the sweep");

    auto &ablation = report.root().subgroup("ablation");
    report.set(ablation, "capacity_pipelined_qps", capPipelined,
               "saturated drain rate, pipelined executor");
    report.set(ablation, "capacity_barrier_qps", capBarrier,
               "saturated drain rate, barrier baseline");
    report.set(ablation, "capacity_ratio",
               capPipelined / capBarrier,
               "pipelined / barrier saturated capacity");
    report.set(ablation, "sustained_at_slo_pipelined_qps",
               sustPipelined,
               "max achieved qps with p99 within the SLO");
    report.set(ablation, "sustained_at_slo_barrier_qps",
               sustBarrier,
               "max achieved qps with p99 within the SLO");
    report.set(ablation, "overlap_speedup",
               sustPipelined / sustBarrier,
               "pipelined / barrier sustained qps at equal p99");

    for (std::size_t m = 0; m < sweeps.size(); ++m) {
        auto &modeGroup = report.root().subgroup(
            m == 0 ? "pipelined" : "barrier");
        for (std::size_t i = 0; i < sweeps[m].size(); ++i) {
            const Point &p = sweeps[m][i];
            const serve::ServeReport &r = p.report;
            auto &g =
                modeGroup.subgroup("point" + std::to_string(i));
            report.set(g, "load_fraction", p.loadFraction,
                       "offered load / pipelined capacity");
            report.set(g, "offered_qps", r.offeredQps,
                       "open-loop offered rate");
            report.set(g, "achieved_qps", r.achievedQps,
                       "completions per second");
            report.set(g, "goodput_qps", goodputAtSlo(r, sloUs),
                       "completions within the SLO per second");
            report.set(g, "goodput_fraction",
                       r.offered
                           ? static_cast<double>(goodAtSlo(r, sloUs)) /
                                 static_cast<double>(r.offered)
                           : 0.0,
                       "offered queries that met the SLO");
            report.set(g, "p50_us", r.latencyP50Us,
                       "median latency from scheduled arrival");
            report.set(g, "p99_us", r.latencyP99Us, "p99 latency");
            report.set(g, "p999_us", r.latencyP999Us,
                       "p999 latency");
            report.set(g, "max_us", r.latencyMaxUs, "max latency");
            report.set(g, "queue_wait_p99_us", r.queueWaitP99Us,
                       "p99 admission-queue wait");
            report.set(g, "completed",
                       static_cast<double>(r.completed),
                       "queries executed to completion");
            report.set(g, "shed", static_cast<double>(r.shed),
                       "queries refused at admission");
            report.set(g, "expired",
                       static_cast<double>(r.expired),
                       "queries past deadline at dispatch");
        }
    }
    report.write("BENCH_serving.json");
    return 0;
}
