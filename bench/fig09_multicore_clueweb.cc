/**
 * @file
 * Figure 9: multi-core query throughput on the ClueWeb12-like
 * dataset. BOSS and IIU with 1/2/4/8 cores, normalized to Lucene
 * running with 8 threads on 8 CPU cores, per query type Q1-Q6.
 *
 * Paper reference points (8 cores, ClueWeb12): BOSS 7.54x average
 * over Lucene; IIU 1.69x; BOSS scales with cores markedly better
 * than IIU (IIU "hits the maximum performance with fewer cores").
 */

#include "benchutil.h"
#include "common/logging.h"

int
main()
{
    boss::setVerbose(false);
    boss::bench::runMulticoreBench(
        boss::workload::clueWebConfig(),
        "=== Fig. 9: multi-core throughput, ClueWeb12-like "
        "(normalized to Lucene 8-core on SCM) ===");
    return 0;
}
