/**
 * @file
 * Ablation: the paper's forward-looking claim -- "as the aggregate
 * bandwidth of SCM devices scales in the future, BOSS can utilize
 * additional cores much more effectively than IIU". Sweeps SCM
 * channel count (4 -> 8 -> 16, scaling aggregate bandwidth) together
 * with core count and reports throughput normalized to each system's
 * own 4-channel 8-core configuration.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Ablation: future SCM bandwidth scaling "
                "(ClueWeb12-like; normalized per system to 4ch/8 "
                "cores) ===\n");

    Dataset data = makeDataset(workload::clueWebConfig());
    TraceSet iiu(data, SystemKind::Iiu);
    TraceSet boss(data, SystemKind::Boss);

    auto totalQps = [&](const TraceSet &ts, std::uint32_t channels,
                        std::uint32_t cores) {
        SystemConfig cfg;
        cfg.kind = ts.kind();
        cfg.cores = cores;
        cfg.mem = mem::scmConfig();
        cfg.mem.channels = channels;
        // A larger device also tracks more concurrent streams.
        cfg.mem.streamTableSize = 4 * channels;
        double qps = 0.0;
        for (auto type : workload::kAllQueryTypes)
            qps += ts.replay(type, cfg).run.qps;
        return qps;
    };

    std::printf("%-22s %12s %12s\n", "channels/cores", "IIU", "BOSS");
    double iiuBase = totalQps(iiu, 4, 8);
    double bossBase = totalQps(boss, 4, 8);
    struct Point
    {
        std::uint32_t channels;
        std::uint32_t cores;
    };
    const Point points[] = {{4, 8},  {8, 8},  {8, 16},
                            {16, 16}, {16, 32}};
    for (const auto &p : points) {
        char label[32];
        std::snprintf(label, sizeof(label), "%u ch / %u cores",
                      p.channels, p.cores);
        std::printf("%-22s %11.2fx %11.2fx\n", label,
                    totalQps(iiu, p.channels, p.cores) / iiuBase,
                    totalQps(boss, p.channels, p.cores) / bossBase);
    }
    return 0;
}
