/**
 * @file
 * Figure 16: Lucene, IIU and BOSS with 8 cores on DRAM vs SCM,
 * normalized to Lucene with 8 cores on SCM.
 *
 * Paper reference points: Lucene gains at most ~15% from DRAM
 * (compute-bound); IIU gains ~3.29x and BOSS ~2.31x; IIU benefits
 * more because its random accesses are much faster on DRAM.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Fig. 16: DRAM vs SCM with 8 cores, "
                "ClueWeb12-like (normalized to Lucene 8-core on SCM) "
                "===\n");

    Dataset data = makeDataset(workload::clueWebConfig());

    std::map<workload::QueryType, double> baselineQps;
    printHeader("system", true);

    struct Entry
    {
        SystemKind kind;
        bool dram;
    };
    const Entry entries[] = {
        {SystemKind::Lucene, false}, {SystemKind::Lucene, true},
        {SystemKind::Iiu, false},    {SystemKind::Iiu, true},
        {SystemKind::Boss, false},   {SystemKind::Boss, true},
    };

    SystemKind prevKind = SystemKind::Lucene;
    std::unique_ptr<TraceSet> traces;
    for (const auto &entry : entries) {
        if (traces == nullptr || entry.kind != prevKind) {
            traces = std::make_unique<TraceSet>(data, entry.kind);
            prevKind = entry.kind;
        }
        SystemConfig cfg;
        cfg.kind = entry.kind;
        cfg.cores = 8;
        cfg.mem = entry.dram ? mem::dramConfig() : mem::scmConfig();
        std::vector<double> row;
        for (auto type : workload::kAllQueryTypes) {
            double qps = traces->replay(type, cfg).run.qps;
            if (entry.kind == SystemKind::Lucene && !entry.dram)
                baselineQps[type] = qps;
            row.push_back(qps / baselineQps[type]);
        }
        printRow(std::string(systemName(entry.kind)) +
                     (entry.dram ? "-dram" : "-scm"),
                 row, true);
    }
    return 0;
}
