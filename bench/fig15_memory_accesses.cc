/**
 * @file
 * Figure 15: normalized memory access counts by traffic category
 * (LD List, LD Score, LD Inter, ST Inter, ST Result) for IIU vs
 * BOSS, per query type, normalized to IIU's total for that type.
 *
 * Paper reference shape: BOSS eliminates intermediate-data movement
 * (LD/ST Inter) via pipelined multi-term execution, shrinks ST
 * Result to the top-k via the hardware top-k module, and cuts LD
 * List / LD Score through the skip mechanisms.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Fig. 15: memory accesses by category, "
                "ClueWeb12-like (normalized to IIU total per query "
                "type; 64B access units) ===\n");

    Dataset data = makeDataset(workload::clueWebConfig());

    std::printf("%-6s %-8s", "type", "system");
    for (std::size_t c = 0; c < mem::kNumCategories; ++c)
        std::printf(" %10s",
                    mem::categoryName(static_cast<mem::Category>(c))
                        .data());
    std::printf(" %10s\n", "Total");

    JsonReport report("fig15_memory_accesses");
    for (auto type : workload::kAllQueryTypes) {
        auto &typeGroup = report.root().subgroup(
            std::string(workload::queryTypeName(type)));
        double iiuTotal = 0.0;
        for (SystemKind kind : {SystemKind::Iiu, SystemKind::Boss}) {
            std::array<std::uint64_t, mem::kNumCategories> acc{};
            auto traces = buildTraces(data.index, data.layout,
                                      data.byType.at(type), kind);
            for (const auto &t : traces) {
                for (std::size_t c = 0; c < mem::kNumCategories; ++c)
                    acc[c] += t.catAccesses[c];
            }
            double total = 0.0;
            for (auto v : acc)
                total += static_cast<double>(v);
            if (kind == SystemKind::Iiu)
                iiuTotal = total;
            auto &g = typeGroup.subgroup(
                std::string(systemName(kind)));
            std::printf("%-6s %-8s",
                        workload::queryTypeName(type).data(),
                        systemName(kind).data());
            for (std::size_t c = 0; c < mem::kNumCategories; ++c) {
                double normalized =
                    static_cast<double>(acc[c]) / iiuTotal;
                std::printf(" %10.4f", normalized);
                report.set(
                    g,
                    std::string(mem::categoryName(
                        static_cast<mem::Category>(c))),
                    normalized,
                    "64B accesses normalized to IIU total");
            }
            std::printf(" %10.4f\n", total / iiuTotal);
            report.set(g, "total", total / iiuTotal,
                       "all categories, normalized to IIU total");
        }
    }
    report.write("BENCH_fig15.json");
    return 0;
}
