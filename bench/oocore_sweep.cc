/**
 * @file
 * Out-of-core sweep: hit rate and throughput vs DRAM block-cache
 * size on a corpus several times larger than the cache.
 *
 * The experiment BonsaiKV-style tiering exists for: the index image
 * lives in SCM, a DRAM block cache fronts it, and the question is
 * how much cache buys how much throughput. Three measurements over
 * one corpus and one query mix:
 *
 *  1. Cold baseline: no cache at all — every block fetch pays SCM
 *     timing. This is the floor.
 *  2. Warm ceiling: a cache larger than the whole working set,
 *     measured on the second pass so every cacheable read hits and
 *     is serviced at DRAM timing. The cold-vs-warm ratio is the
 *     headline tiering win (acceptance bar: >= 1.3x).
 *  3. The sweep: cache capacities stepping up a geometric ladder
 *     that keeps the corpus >= 4x the cache at every point, each
 *     point warmed by one full pass and measured on the next. Hit
 *     rate must grow monotonically with capacity.
 *
 * Output: a table on stdout and BENCH_oocore.json with a
 * "cache_sweep" curve (one subgroup per capacity point) and an
 * "ablation" group holding the cold/warm comparison
 * (tools/bench_check.py validates the shape in CI).
 */

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil.h"
#include "boss/device.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace
{

using namespace boss;

struct Measurement
{
    double cacheMb = 0.0;
    double qps = 0.0;
    double hitRate = 0.0;
    accel::SearchOutcome outcome;
};

double
toQps(std::size_t queries, const accel::SearchOutcome &outcome)
{
    BOSS_ASSERT(outcome.simSeconds > 0.0, "zero simulated time");
    return static_cast<double>(queries) / outcome.simSeconds;
}

/**
 * Fresh device at @p cacheMb over the shared index; one fill pass
 * (when warmed) then one measured pass. A single cache lock shard
 * keeps CLOCK replacement deterministic, so the checked-in numbers
 * reproduce exactly.
 */
Measurement
measure(const std::shared_ptr<const index::InvertedIndex> &index,
        const std::vector<workload::Query> &queries, double cacheMb,
        bool warmed)
{
    accel::DeviceConfig cfg;
    cfg.cacheMB = cacheMb;
    cfg.cacheShards = 1;
    accel::Device device(cfg);
    device.loadSharedIndex(index);
    if (warmed)
        device.searchBatch(queries);
    Measurement m;
    m.cacheMb = cacheMb;
    m.outcome = device.searchBatch(queries);
    m.qps = toQps(queries.size(), m.outcome);
    if (m.outcome.cacheLookups > 0)
        m.hitRate = static_cast<double>(m.outcome.cacheHits) /
                    static_cast<double>(m.outcome.cacheLookups);
    return m;
}

} // namespace

int
main()
{
    common::ThreadPool::setGlobalThreads(
        std::max(1u, std::thread::hardware_concurrency()));

    workload::CorpusConfig cfg;
    cfg.name = "oocore-sweep";
    cfg.numDocs = 120'000;
    cfg.vocabSize = 1'000;
    cfg.seed = 42;
    workload::Corpus corpus(cfg);

    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    qcfg.seed = 7;
    auto queries = workload::sampleQueries(qcfg, 96);
    auto terms = workload::collectTerms(queries);

    auto index = std::make_shared<const index::InvertedIndex>(
        corpus.buildIndex(terms));

    // The image size is the "corpus" side of the corpus-to-cache
    // ratio: everything a cacheable read can touch lives in it.
    double indexMb;
    {
        accel::Device probe;
        probe.loadSharedIndex(index);
        indexMb = static_cast<double>(probe.layout().sizeBytes()) /
                  (1 << 20);
    }
    std::printf("corpus: %u docs, vocab %u; index image %.2f MB; "
                "%zu distinct queries\n",
                cfg.numDocs, cfg.vocabSize, indexMb, queries.size());

    // --- Cold floor and warm ceiling.
    Measurement cold =
        measure(index, queries, /*cacheMb=*/0.0, /*warmed=*/false);
    // Over-provisioned cache: nothing evicts, so the second pass
    // hits on every cacheable read and its resident bytes measure
    // the working set.
    Measurement warm =
        measure(index, queries, 2.0 * indexMb, /*warmed=*/true);
    BOSS_ASSERT(warm.outcome.cacheEvictions == 0,
                "warm ceiling evicted despite 2x headroom");
    double gap = warm.qps / cold.qps;
    std::printf("cold %.0f qps (no cache) vs warm %.0f qps "
                "(%.1f%% hits) -> %.2fx tiering win\n",
                cold.qps, warm.qps, 100.0 * warm.hitRate, gap);
    BOSS_ASSERT(gap >= 1.3,
                "cold-vs-warm qps gap below the 1.3x acceptance bar");

    // --- The capacity sweep: corpus >= 4x cache at every point.
    const std::vector<double> fractions = {1.0 / 64, 1.0 / 32,
                                           1.0 / 16, 1.0 / 8,
                                           1.0 / 4};
    std::vector<Measurement> sweep;
    std::printf("\n%-10s %8s %8s %10s %12s %12s %10s\n", "cache MB",
                "corpus/x", "hit %", "qps", "DRAM KB", "SCM KB",
                "evict");
    for (double f : fractions) {
        Measurement m =
            measure(index, queries, f * indexMb, /*warmed=*/true);
        std::printf(
            "%-10.2f %8.1f %8.1f %10.0f %12.1f %12.1f %10llu\n",
            m.cacheMb, indexMb / m.cacheMb, 100.0 * m.hitRate,
            m.qps, m.outcome.dramBytes / 1024.0,
            m.outcome.deviceBytes / 1024.0,
            static_cast<unsigned long long>(
                m.outcome.cacheEvictions));
        sweep.push_back(std::move(m));
    }
    for (std::size_t i = 1; i < sweep.size(); ++i)
        BOSS_ASSERT(sweep[i].hitRate >= sweep[i - 1].hitRate,
                    "hit rate not monotone in cache capacity");
    BOSS_ASSERT(sweep.back().qps <= warm.qps,
                "capacity-constrained point beat the warm ceiling");

    // --- JSON report.
    bench::JsonReport report("oocore");
    report.set(report.root(), "num_docs",
               static_cast<double>(cfg.numDocs), "corpus documents");
    report.set(report.root(), "distinct_queries",
               static_cast<double>(queries.size()),
               "distinct queries in the replayed batch");
    report.set(report.root(), "index_mb", indexMb,
               "index image size (the SCM-resident corpus)");

    auto &ablation = report.root().subgroup("ablation");
    report.set(ablation, "cold_qps", cold.qps,
               "throughput with no cache (every read pays SCM)");
    report.set(ablation, "warm_qps", warm.qps,
               "second-pass throughput, cache >= working set");
    report.set(ablation, "warm_cold_gap", gap,
               "warm / cold qps (acceptance bar >= 1.3x)");
    report.set(ablation, "warm_cache_mb", warm.cacheMb,
               "over-provisioned warm-ceiling capacity");
    report.set(ablation, "warm_hit_rate", warm.hitRate,
               "warm-pass hit fraction (1.0 = fully resident)");
    report.set(ablation, "working_set_mb",
               static_cast<double>(warm.outcome.cacheLookups
                                       ? warm.outcome.dramBytes
                                       : 0) /
                   (1 << 20),
               "bytes served from DRAM on the fully warm pass");

    auto &curve = report.root().subgroup("cache_sweep");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const Measurement &m = sweep[i];
        auto &g = curve.subgroup("point" + std::to_string(i));
        report.set(g, "cache_mb", m.cacheMb, "cache capacity");
        report.set(g, "corpus_to_cache_ratio", indexMb / m.cacheMb,
                   "index image / cache capacity (>= 4 by design)");
        report.set(g, "hit_rate", m.hitRate,
                   "measured-pass cache hit fraction");
        report.set(g, "qps", m.qps,
                   "measured-pass simulated throughput");
        report.set(g, "dram_bytes",
                   static_cast<double>(m.outcome.dramBytes),
                   "bytes served at DRAM timing");
        report.set(g, "scm_bytes",
                   static_cast<double>(m.outcome.deviceBytes),
                   "bytes served by the SCM device");
        report.set(g, "evictions",
                   static_cast<double>(m.outcome.cacheEvictions),
                   "CLOCK evictions during the measured pass");
    }
    report.write("BENCH_oocore.json");
    return 0;
}
