/**
 * @file
 * Ablation: the programmable decompression module's payoff. Each
 * row forces one compression scheme for the whole index (what a
 * fixed-function accelerator like IIU supports) vs the hybrid
 * best-per-list selection BOSS's reconfigurable datapath enables.
 * Reports index footprint and BOSS query throughput: smaller
 * encodings mean fewer SCM bytes per block and higher throughput.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Ablation: compression scheme vs index size and "
                "throughput (ClueWeb12-like, BOSS 8-core) ===\n");

    workload::CorpusConfig cfg = workload::clueWebConfig();
    workload::Corpus corpus(cfg);
    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    auto queries = workload::makeWorkload(qcfg);
    auto terms = workload::collectTerms(queries);

    std::printf("%-10s %14s %14s\n", "scheme", "index MB", "QPS");

    auto evaluate = [&](const char *name,
                        std::optional<compress::Scheme> scheme) {
        auto index = corpus.buildIndex(terms, scheme);
        index::MemoryLayout layout(index, 0x10000, 256);
        SystemConfig sys;
        sys.kind = SystemKind::Boss;
        auto metrics =
            runWorkload(index, layout, queries, sys);
        std::printf("%-10s %14.2f %14.0f\n", name,
                    static_cast<double>(index.sizeBytes()) / 1e6,
                    metrics.run.qps);
    };

    for (compress::Scheme s : compress::kFig3Schemes)
        evaluate(schemeName(s).data(), s);
    evaluate("Hybrid", std::nullopt);
    return 0;
}
