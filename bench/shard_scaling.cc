/**
 * @file
 * Multi-device scale-out: simulated throughput vs shard count.
 *
 * Partitions one corpus across {1, 2, 4, 8} simulated BOSS devices
 * (document-partitioned shards, host-side top-k merge) and runs the
 * same query batch at every point. Shards execute concurrently in
 * the model, so the batch makespan is the slowest shard's simulated
 * time; the sweep shows how much of the ideal N-device speedup the
 * partition actually delivers (shards see fewer documents but every
 * query still touches every shard — per-shard early termination gets
 * less effective as shards shrink).
 *
 * The merged top-k at every shard count is checked bit-identical to
 * the single-device run, so the bench doubles as a correctness
 * sweep. Results go to stdout and BENCH_shard_scaling.json with one
 * subgroup per shard count, including every shard's own makespan.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "api/sharded_device.h"
#include "benchutil.h"
#include "common/logging.h"

namespace
{

using namespace boss;
using Clock = std::chrono::steady_clock;

struct Sample
{
    std::uint32_t shards;
    double simSeconds;  ///< batch makespan (slowest shard)
    double qps;         ///< queries / simSeconds
    double hostSeconds; ///< host wall time for the batch
    std::uint64_t deviceBytes;
    std::vector<double> shardSeconds;
};

} // namespace

int
main()
{
    workload::CorpusConfig cfg;
    cfg.name = "shard-scaling";
    cfg.numDocs = 200'000;
    cfg.vocabSize = 5'000;
    cfg.seed = 42;
    workload::Corpus corpus(cfg);

    // Split-seed sampling: every query slot draws from its own
    // (seed, slot) stream, so the batch is independent of generation
    // order — and of the shard count under test.
    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    qcfg.seed = 7;
    auto queries = workload::sampleQueries(qcfg, 120);
    auto terms = workload::collectTerms(queries);

    std::printf("batch: %zu queries, %u docs, vocab %u\n",
                queries.size(), cfg.numDocs, cfg.vocabSize);
    std::printf("%-8s %14s %14s %12s %14s\n", "shards", "sim seconds",
                "sim qps", "speedup", "SCM MB");

    std::vector<std::vector<engine::Result>> reference;
    std::vector<Sample> samples;
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        api::ShardedDeviceConfig dcfg;
        dcfg.shards = shards;
        api::ShardedDevice device(dcfg);
        device.loadShards(corpus.buildShardedIndex(terms, shards));

        auto start = Clock::now();
        api::ShardedOutcome outcome = device.searchBatch(queries);
        double hostSeconds =
            std::chrono::duration<double>(Clock::now() - start)
                .count();

        // Shard invariance: the merged top-k must not depend on the
        // partition at all.
        if (shards == 1) {
            reference = outcome.perQuery;
        } else {
            BOSS_ASSERT(outcome.perQuery == reference,
                        "merged top-k diverged at ", shards,
                        " shards");
        }

        Sample s;
        s.shards = shards;
        s.simSeconds = outcome.simSeconds;
        s.qps = static_cast<double>(queries.size()) /
                outcome.simSeconds;
        s.hostSeconds = hostSeconds;
        s.deviceBytes = outcome.deviceBytes;
        s.shardSeconds = outcome.shardSeconds;
        samples.push_back(std::move(s));

        std::printf("%-8u %14.6f %14.1f %11.2fx %14.2f\n", shards,
                    samples.back().simSeconds, samples.back().qps,
                    samples.front().simSeconds /
                        samples.back().simSeconds,
                    static_cast<double>(samples.back().deviceBytes) /
                        1e6);
    }

    bench::JsonReport report("shard_scaling");
    report.set(report.root(), "queries",
               static_cast<double>(queries.size()),
               "queries per batch");
    report.set(report.root(), "num_docs",
               static_cast<double>(cfg.numDocs), "corpus documents");
    for (const Sample &s : samples) {
        auto &g = report.root().subgroup("shards" +
                                         std::to_string(s.shards));
        report.set(g, "sim_seconds", s.simSeconds,
                   "simulated batch makespan (slowest shard)");
        report.set(g, "sim_qps", s.qps,
                   "simulated batch throughput");
        report.set(g, "speedup_vs_1",
                   samples.front().simSeconds / s.simSeconds,
                   "throughput relative to one device");
        report.set(g, "host_seconds", s.hostSeconds,
                   "host wall time for the batch");
        report.set(g, "device_bytes",
                   static_cast<double>(s.deviceBytes),
                   "total SCM traffic over all shards");
        for (std::size_t i = 0; i < s.shardSeconds.size(); ++i) {
            report.set(g, "shard" + std::to_string(i) + "_seconds",
                       s.shardSeconds[i],
                       "this shard's simulated makespan");
        }
    }
    report.write("BENCH_shard_scaling.json");
    return 0;
}
