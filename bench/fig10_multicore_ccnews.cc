/**
 * @file
 * Figure 10: multi-core query throughput on the CC-News-like
 * dataset, normalized to Lucene with 8 cores.
 *
 * Paper reference points (8 cores, CC-News): BOSS 8.7x average over
 * Lucene; IIU 1.75x.
 */

#include "benchutil.h"
#include "common/logging.h"

int
main()
{
    boss::setVerbose(false);
    boss::bench::runMulticoreBench(
        boss::workload::ccNewsConfig(),
        "=== Fig. 10: multi-core throughput, CC-News-like "
        "(normalized to Lucene 8-core on SCM) ===");
    return 0;
}
