/**
 * @file
 * Table III: area and power breakdown of BOSS at the TSMC 40 nm
 * node. The per-module numbers are the paper's synthesis results
 * (Chisel -> Verilog -> Synopsys DC), carried as model constants;
 * this bench prints the table and verifies the totals.
 */

#include <cstdio>

#include "model/system.h"
#include "power/power.h"

using namespace boss;

int
main()
{
    std::printf("=== Table III: area and power of BOSS (TSMC 40nm) "
                "===\n\n");

    std::printf("[BOSS]\n");
    std::printf("  %-18s %6s %12s %12s\n", "Component", "Count",
                "Area (mm^2)", "Power (mW)");
    for (const auto &m : power::bossDeviceBreakdown()) {
        std::printf("  %-18s %6u %12.3f %12.3f\n", m.name.data(),
                    m.count, m.areaMm2, m.powerMw);
    }
    std::printf("  %-18s %6s %12.3f %12.3f\n", "Total", "",
                power::bossDeviceAreaMm2(),
                power::bossDevicePowerW() * 1000.0);

    std::printf("\n[BOSS core]\n");
    std::printf("  %-18s %6s %12s %12s\n", "Component", "Count",
                "Area (mm^2)", "Power (mW)");
    for (const auto &m : power::bossCoreBreakdown()) {
        std::printf("  %-18s %6u %12.3f %12.3f\n", m.name.data(),
                    m.count, m.areaMm2, m.powerMw);
    }
    std::printf("  %-18s %6s %12.3f %12.3f\n", "Total", "",
                power::bossCoreAreaMm2(), power::bossCorePowerMw());

    std::printf("\nBOSS vs host CPU package power: %.1f W vs %.1f W "
                "(%.1fx lower)\n",
                power::bossDevicePowerW(), power::kCpuPackagePowerW,
                power::kCpuPackagePowerW /
                    power::systemPowerW(model::SystemKind::Boss, 8));
    return 0;
}
