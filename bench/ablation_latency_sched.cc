/**
 * @file
 * Ablation: per-query latency and scheduling policy. The paper
 * reports throughput; a serving tier also cares about tail latency.
 * This bench reports the latency distribution of the mixed 300-query
 * batch on each system and contrasts the command queue's FIFO
 * dispatch with shortest-job-first, which trades the long queries'
 * completion time for a much better p50.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Ablation: query latency and scheduling "
                "(ClueWeb12-like, mixed 300-query batch, 8 cores) "
                "===\n");

    Dataset data = makeDataset(workload::clueWebConfig());

    std::printf("%-22s %10s %10s %10s %10s\n", "system/policy",
                "mean(us)", "p50(us)", "p95(us)", "p99(us)");
    for (SystemKind kind :
         {SystemKind::Lucene, SystemKind::Iiu, SystemKind::Boss}) {
        // Whole mixed batch, not split per type.
        auto traces = buildTraces(data.index, data.layout,
                                  data.queries, kind);
        for (SchedPolicy sched : {SchedPolicy::Fifo, SchedPolicy::Sjf}) {
            SystemConfig cfg;
            cfg.kind = kind;
            cfg.cores = 8;
            cfg.sched = sched;
            auto m = replayTraces(traces, cfg);
            char label[64];
            std::snprintf(label, sizeof(label), "%s/%s",
                          systemName(kind).data(),
                          sched == SchedPolicy::Fifo ? "fifo" : "sjf");
            std::printf("%-22s %10.1f %10.1f %10.1f %10.1f\n", label,
                        m.run.latencyMean * 1e6,
                        m.run.latencyP50 * 1e6,
                        m.run.latencyP95 * 1e6,
                        m.run.latencyP99 * 1e6);
        }
    }
    return 0;
}
