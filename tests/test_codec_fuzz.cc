/**
 * @file
 * Codec fuzz / property tests: every supported scheme must
 * round-trip arbitrary delta blocks exactly, or refuse them in the
 * one documented case (Simple16 with values >= 2^28). Inputs cover
 * the adversarial corners — max-width values, all-zero runs,
 * exception-heavy mixtures, 1-element blocks and block-boundary
 * list lengths (127/128/129) — plus a fixed-seed randomized sweep
 * over value widths, so a codec regression cannot hide behind the
 * friendly gap distributions the corpus generator produces.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "compress/codec.h"
#include "engine/execute.h"
#include "engine/plan.h"
#include "index/block_decoder.h"
#include "index/doc_filter.h"
#include "index/inverted_index.h"
#include "kernels/kernels.h"

namespace
{

using namespace boss;
using compress::BlockEncoding;
using compress::Scheme;

/** Max elements per block (mirrors index::kBlockSize). */
constexpr std::size_t kBlock = 128;

/** True when S16 cannot represent @p values. */
bool
s16Unrepresentable(const std::vector<std::uint32_t> &values)
{
    for (auto v : values) {
        if (v >= (1u << 28))
            return true;
    }
    return false;
}

/**
 * Round-trip @p values through @p scheme. Refusals are only legal
 * where documented: empty input (PFD family) and S16 overflow.
 */
void
roundTrip(Scheme scheme, const std::vector<std::uint32_t> &values)
{
    const compress::Codec &codec = compress::codecFor(scheme);
    BlockEncoding enc;
    if (!codec.encode(values, enc)) {
        bool legal =
            values.empty() ||
            (scheme == Scheme::S16 && s16Unrepresentable(values));
        EXPECT_TRUE(legal)
            << schemeName(scheme) << " refused a representable block"
            << " of " << values.size() << " values";
        return;
    }
    std::vector<std::uint32_t> out(values.size(), 0xDEADBEEF);
    codec.decode(enc.bytes, out);
    EXPECT_EQ(out, values)
        << schemeName(scheme) << " round-trip mismatch, "
        << values.size() << " values";
}

void
roundTripAll(const std::vector<std::uint32_t> &values)
{
    for (Scheme s : compress::kAllSchemes)
        roundTrip(s, values);
}

// ---------------------------------------------------------------
// Deterministic adversarial blocks.
// ---------------------------------------------------------------

TEST(CodecFuzzTest, AllZeroRuns)
{
    for (std::size_t n : {1u, 2u, 7u, 64u, 127u, 128u})
        roundTripAll(std::vector<std::uint32_t>(n, 0));
}

TEST(CodecFuzzTest, MaxWidthValues)
{
    const auto max = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t n : {1u, 17u, 127u, 128u})
        roundTripAll(std::vector<std::uint32_t>(n, max));
}

TEST(CodecFuzzTest, SingleElementEveryWidth)
{
    for (int w = 0; w <= 32; ++w) {
        std::uint32_t v =
            w == 0 ? 0
                   : static_cast<std::uint32_t>(
                         (1ull << w) - 1); // all-ones of width w
        roundTripAll({v});
    }
}

TEST(CodecFuzzTest, PowerOfTwoBoundaries)
{
    // Values straddling every width boundary in one block: the
    // bit-width selection and any per-run format switching all get
    // exercised at their edges.
    std::vector<std::uint32_t> values;
    for (int w = 1; w <= 32; ++w) {
        values.push_back(
            static_cast<std::uint32_t>((1ull << w) - 1));
        if (w < 32)
            values.push_back(1u << w);
    }
    roundTripAll(values);
}

TEST(CodecFuzzTest, ExceptionHeavyBlocks)
{
    // Mostly-small blocks with hot spots of huge values: the PFD
    // family's patch path, VB's multi-byte path, S8b's selector
    // switching. Positions are spread so exceptions land in every
    // part of the block.
    for (std::uint32_t huge :
         {1u << 20, 1u << 27, 1u << 28, 0xFFFFFFFFu}) {
        std::vector<std::uint32_t> values(kBlock, 3);
        for (std::size_t i = 0; i < values.size(); i += 9)
            values[i] = huge;
        roundTripAll(values);
    }
}

TEST(CodecFuzzTest, Simple16RefusesOverflowExactlyAtTheBoundary)
{
    const compress::Codec &s16 = compress::codecFor(Scheme::S16);
    BlockEncoding enc;
    EXPECT_TRUE(s16.encode(
        std::vector<std::uint32_t>{(1u << 28) - 1}, enc));
    EXPECT_FALSE(
        s16.encode(std::vector<std::uint32_t>{1u << 28}, enc));
}

TEST(CodecFuzzTest, AlternatingExtremes)
{
    std::vector<std::uint32_t> values(kBlock);
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = i % 2 == 0 ? 0 : 0xFFFFFFFFu;
    roundTripAll(values);
}

// ---------------------------------------------------------------
// Fixed-seed randomized sweep.
// ---------------------------------------------------------------

TEST(CodecFuzzTest, SeededWidthSweep)
{
    // Each (seed, size, width) slot derives its own stream via
    // splitSeed, so any sub-range of the sweep reproduces exactly.
    const std::size_t sizes[] = {1, 2, 7, 33, 64, 127, 128};
    const int widths[] = {1, 4, 8, 12, 16, 20, 28, 32};
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        std::uint64_t slot = 0;
        for (std::size_t n : sizes) {
            for (int w : widths) {
                Rng rng(splitSeed(seed, slot++));
                std::uint64_t bound = 1ull << w;
                std::vector<std::uint32_t> values(n);
                for (auto &v : values)
                    v = static_cast<std::uint32_t>(
                        rng.below(bound));
                roundTripAll(values);
            }
        }
    }
}

TEST(CodecFuzzTest, PickBestSchemeAlwaysRoundTrips)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(splitSeed(0xBE57, seed));
        std::vector<std::uint32_t> values(
            1 + rng.below(kBlock));
        for (auto &v : values) {
            // Heavy-tailed widths so the best scheme varies.
            int w = 1 + static_cast<int>(rng.below(32));
            v = static_cast<std::uint32_t>(rng.below(1ull << w));
        }
        BlockEncoding best;
        Scheme s = compress::pickBestScheme(values, best);
        std::vector<std::uint32_t> out(values.size());
        compress::codecFor(s).decode(best.bytes, out);
        EXPECT_EQ(out, values) << "seed " << seed << " scheme "
                               << schemeName(s);
    }
}

// ---------------------------------------------------------------
// Kernel-tier equivalence: every SIMD tier available on this host
// must decode byte-for-byte identically to the scalar tier, for
// every codec, across widths, sizes and exception densities.
// ---------------------------------------------------------------

/** Decode @p enc under kernel tier @p t. */
std::vector<std::uint32_t>
decodeWithTier(kernels::Tier t, Scheme scheme,
               const BlockEncoding &enc, std::size_t n)
{
    kernels::setTier(t);
    std::vector<std::uint32_t> out(n, 0xDEADBEEF);
    compress::codecFor(scheme).decode(enc.bytes, out);
    return out;
}

/**
 * Encode @p values with every codec and check each available tier
 * decodes exactly what the scalar tier does (which the round-trip
 * suites above pin to the true values).
 */
void
checkTierEquivalence(const std::vector<std::uint32_t> &values)
{
    struct TierGuard
    {
        ~TierGuard()
        {
            kernels::setTier(kernels::bestSupportedTier());
        }
    } guard;
    for (Scheme s : compress::kAllSchemes) {
        const compress::Codec &codec = compress::codecFor(s);
        BlockEncoding enc;
        if (!codec.encode(values, enc))
            continue; // legal refusals covered elsewhere
        auto ref = decodeWithTier(kernels::Tier::Scalar, s, enc,
                                  values.size());
        EXPECT_EQ(ref, values) << schemeName(s) << " scalar decode";
        for (kernels::Tier t : kernels::availableTiers()) {
            auto out = decodeWithTier(t, s, enc, values.size());
            EXPECT_EQ(out, ref)
                << schemeName(s) << " tier "
                << kernels::tierName(t) << " diverged from scalar ("
                << values.size() << " values)";
        }
    }
}

TEST(KernelTierFuzzTest, RandomWidthSweepAllCodecs)
{
    const std::size_t sizes[] = {1, 2, 7, 33, 64, 127, 128, 129, 200};
    const int widths[] = {1, 2, 4, 7, 8, 11, 16, 20, 25, 28, 32};
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        std::uint64_t slot = 0;
        for (std::size_t n : sizes) {
            for (int w : widths) {
                Rng rng(splitSeed(seed ^ 0x7153, slot++));
                std::vector<std::uint32_t> values(n);
                for (auto &v : values)
                    v = static_cast<std::uint32_t>(
                        rng.below(1ull << w));
                checkTierEquivalence(values);
            }
        }
    }
}

TEST(KernelTierFuzzTest, ExceptionDensitySweep)
{
    // PFD-family patch paths at 0%..~50% exception rates, with the
    // base width and the exception magnitude both varied.
    const double densities[] = {0.0, 0.01, 0.05, 0.2, 0.5};
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        std::uint64_t slot = 0;
        for (double density : densities) {
            for (std::uint32_t huge : {1u << 16, 1u << 24, 0xFFFFFFFFu}) {
                Rng rng(splitSeed(seed ^ 0xECC, slot++));
                std::vector<std::uint32_t> values(kBlock);
                auto cut = static_cast<std::uint64_t>(density * 1000);
                for (auto &v : values) {
                    if (rng.below(1000) < cut)
                        v = static_cast<std::uint32_t>(
                            rng.below(huge) | (huge >> 1));
                    else
                        v = static_cast<std::uint32_t>(rng.below(64));
                }
                checkTierEquivalence(values);
            }
        }
    }
}

TEST(KernelTierFuzzTest, AdversarialBlocks)
{
    checkTierEquivalence(std::vector<std::uint32_t>(kBlock, 0));
    checkTierEquivalence(
        std::vector<std::uint32_t>(kBlock, 0xFFFFFFFFu));
    std::vector<std::uint32_t> alternating(kBlock);
    for (std::size_t i = 0; i < alternating.size(); ++i)
        alternating[i] = i % 2 == 0 ? 0 : 0xFFFFFFFFu;
    checkTierEquivalence(alternating);
    std::vector<std::uint32_t> boundaries;
    for (int w = 1; w <= 32; ++w) {
        boundaries.push_back(
            static_cast<std::uint32_t>((1ull << w) - 1));
        if (w < 32)
            boundaries.push_back(1u << w);
    }
    checkTierEquivalence(boundaries);
}

// ---------------------------------------------------------------
// List-level round-trips at block boundaries.
// ---------------------------------------------------------------

/** Compress a synthetic list with @p scheme and decode it back. */
void
listRoundTrip(std::size_t count, Scheme scheme, std::uint32_t stride,
              std::uint64_t seed)
{
    Rng rng(splitSeed(seed, count * 8 + std::uint64_t(scheme)));
    index::PostingList postings;
    postings.reserve(count);
    DocId doc = 0;
    for (std::size_t i = 0; i < count; ++i) {
        doc += 1 + static_cast<DocId>(rng.below(stride));
        auto tf = static_cast<TermFreq>(1 + rng.below(200));
        postings.push_back({doc, tf});
    }

    std::vector<index::DocInfo> docs(doc + 1);
    index::Bm25 bm25({}, static_cast<std::uint32_t>(docs.size()),
                     300.0);
    for (auto &d : docs) {
        d.length = 300;
        d.norm = bm25.docNorm(d.length);
    }

    auto list = index::IndexBuilder::compressList(
        7, postings, scheme, bm25, docs);
    EXPECT_EQ(list.docCount, count);
    EXPECT_EQ(list.numBlocks(), (count + kBlock - 1) / kBlock);
    EXPECT_EQ(index::decodeAll(list), postings)
        << schemeName(scheme) << " count " << count;
}

TEST(CodecFuzzTest, ListsAtBlockBoundaries)
{
    // 1, 127, 128, 129 and a multi-block tail: every combination of
    // full and partial trailing blocks, under every scheme.
    for (std::size_t count : {1u, 127u, 128u, 129u, 257u}) {
        for (Scheme s : compress::kAllSchemes) {
            listRoundTrip(count, s, 40, 0xF00D);
            listRoundTrip(count, s, 5000, 0xF00E);
        }
    }
}

// ---------------------------------------------------------------
// Tombstone interaction: fuzzed delete bitmaps against every codec.
// The tombstone filter sits between block decode and the top-k
// heap, so pruning decisions are made over bounds that include
// deleted postings; whatever the codec and however dense the
// deletes, the executed results must equal the brute-force oracle
// over the same bitmap.
// ---------------------------------------------------------------

/** A small multi-term index, every list forced to @p scheme. */
index::InvertedIndex
tombstoneIndex(Scheme scheme, std::uint32_t numDocs,
               std::uint64_t seed)
{
    constexpr TermId kTerms = 8;
    index::IndexBuilder builder;
    builder.forceScheme(scheme);
    std::vector<std::uint32_t> lengths(numDocs);
    Rng lenRng(splitSeed(seed, 999));
    for (auto &l : lengths)
        l = 20 + static_cast<std::uint32_t>(lenRng.below(400));
    builder.setDocLengths(std::move(lengths));
    for (TermId t = 0; t < kTerms; ++t) {
        Rng rng(splitSeed(seed, t));
        index::PostingList postings;
        // Density varies per term: dense lists exercise block
        // skipping, sparse ones the patch/exception paths.
        const std::uint64_t stride = 1 + (t % 4) * 7;
        DocId doc = static_cast<DocId>(rng.below(3));
        while (doc < numDocs) {
            postings.push_back(
                {doc,
                 static_cast<TermFreq>(1 + rng.below(50))});
            doc += 1 + static_cast<DocId>(rng.below(stride));
        }
        builder.addTerm(t, std::move(postings));
    }
    return builder.build();
}

TEST(CodecFuzzTest, TombstoneBitmapSweepAllCodecs)
{
    constexpr std::uint32_t kDocs = 4000;
    const double densities[] = {0.0, 0.01, 0.3, 0.9, 1.0};

    std::vector<engine::QueryPlan> plans;
    {
        engine::QueryPlan p;
        p.groups = {{0}};
        p.allTerms = {0};
        plans.push_back(p);
        p.groups = {{1}, {4}}; // union
        p.allTerms = {1, 4};
        plans.push_back(p);
        p.groups = {{2, 6}}; // intersection
        p.allTerms = {2, 6};
        plans.push_back(p);
        p.groups = {{3, 5}, {7}}; // mixed DNF
        p.allTerms = {3, 5, 7};
        plans.push_back(p);
    }

    engine::ExecFlags boss;
    engine::ExecFlags exhaustive;
    exhaustive.blockSkip = false;
    exhaustive.wandSkip = false;

    for (Scheme scheme : compress::kAllSchemes) {
        const auto index = tombstoneIndex(scheme, kDocs, 0x70FB);
        for (double density : densities) {
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                index::TombstoneSet tombs(kDocs);
                Rng rng(splitSeed(
                    seed ^ 0x70FB,
                    static_cast<std::uint64_t>(scheme)));
                const auto cut =
                    static_cast<std::uint64_t>(density * 1000);
                for (DocId d = 0; d < kDocs; ++d) {
                    if (rng.below(1000) < cut)
                        tombs.markDeleted(d);
                }
                for (const auto &plan : plans) {
                    const auto oracle = engine::naiveTopK(
                        index, plan, 50, &tombs);
                    const auto fast = engine::executeQuery(
                        index, plan, 50, boss, nullptr, nullptr,
                        nullptr, &tombs);
                    EXPECT_EQ(fast, oracle)
                        << schemeName(scheme) << " density "
                        << density << " seed " << seed;
                    EXPECT_EQ(
                        engine::executeQuery(index, plan, 50,
                                             exhaustive, nullptr,
                                             nullptr, nullptr,
                                             &tombs),
                        oracle)
                        << schemeName(scheme)
                        << " (exhaustive) density " << density
                        << " seed " << seed;
                    for (const auto &r : fast)
                        EXPECT_FALSE(tombs.deleted(r.doc));
                }
            }
        }
    }
}

} // namespace
