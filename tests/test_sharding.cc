/**
 * @file
 * Sharding tests: the document partition, the shard builders, and
 * the property at the heart of the scatter/merge design — the merged
 * top-k of any shard count is bit-identical to a single device over
 * the whole corpus, and shard construction is reproducible at any
 * build order or parallelism.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "api/sharded_device.h"
#include "boss/device.h"
#include "common/thread_pool.h"
#include "engine/execute.h"
#include "engine/plan.h"
#include "index/block_decoder.h"
#include "index/sharding.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;

// ---------------------------------------------------------------
// ShardMap.
// ---------------------------------------------------------------

TEST(ShardMapTest, PartitionIsContiguousAndBalanced)
{
    for (std::uint32_t shards : {1u, 2u, 3u, 4u, 7u, 8u}) {
        index::ShardMap map(1000, shards);
        ASSERT_EQ(map.numShards(), shards);
        EXPECT_EQ(map.numDocs(), 1000u);
        EXPECT_EQ(map.docBase(0), 0u);
        std::uint32_t total = 0;
        for (std::uint32_t s = 0; s < shards; ++s) {
            if (s > 0) {
                EXPECT_EQ(map.docBase(s),
                          map.docBase(s - 1) + map.docCount(s - 1));
            }
            EXPECT_LE(map.docCount(s), 1000 / shards + 1);
            EXPECT_GE(map.docCount(s), 1000 / shards);
            total += map.docCount(s);
        }
        EXPECT_EQ(total, 1000u);
    }
}

TEST(ShardMapTest, ShardOfAndRebaseRoundTrip)
{
    index::ShardMap map(997, 4); // deliberately not divisible
    for (DocId d = 0; d < 997; ++d) {
        std::uint32_t s = map.shardOf(d);
        ASSERT_LT(s, 4u);
        ASSERT_GE(d, map.docBase(s));
        ASSERT_LT(d, map.docBase(s) + map.docCount(s));
        EXPECT_EQ(map.toGlobal(s, map.toLocal(s, d)), d);
    }
}

TEST(ShardMapTest, MoreShardsThanDocsLeavesEmptyShards)
{
    index::ShardMap map(3, 8);
    std::uint32_t nonEmpty = 0;
    for (std::uint32_t s = 0; s < 8; ++s)
        nonEmpty += map.docCount(s) > 0 ? 1 : 0;
    EXPECT_EQ(nonEmpty, 3u);
    EXPECT_EQ(map.numDocs(), 3u);
}

// ---------------------------------------------------------------
// Shard building.
// ---------------------------------------------------------------

class ShardingTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload::CorpusConfig cfg;
        cfg.name = "shard-test";
        cfg.numDocs = 20'000;
        cfg.vocabSize = 400;
        cfg.seed = 77;
        corpus_ = new workload::Corpus(cfg);

        workload::QueryWorkloadConfig qcfg;
        qcfg.vocabSize = cfg.vocabSize;
        qcfg.seed = 5;
        queries_ = new std::vector<workload::Query>(
            workload::sampleQueries(qcfg, 36));
        terms_ = new std::vector<TermId>(
            workload::collectTerms(*queries_));
    }

    static void
    TearDownTestSuite()
    {
        delete corpus_;
        delete queries_;
        delete terms_;
        corpus_ = nullptr;
        queries_ = nullptr;
        terms_ = nullptr;
    }

    void TearDown() override
    {
        common::ThreadPool::setGlobalThreads(1);
    }

    static workload::Corpus *corpus_;
    static std::vector<workload::Query> *queries_;
    static std::vector<TermId> *terms_;
};

workload::Corpus *ShardingTest::corpus_ = nullptr;
std::vector<workload::Query> *ShardingTest::queries_ = nullptr;
std::vector<TermId> *ShardingTest::terms_ = nullptr;

/** Field-by-field equality of two compressed lists. */
void
expectListsEqual(const index::CompressedPostingList &a,
                 const index::CompressedPostingList &b)
{
    ASSERT_EQ(a.term, b.term);
    ASSERT_EQ(a.scheme, b.scheme);
    ASSERT_EQ(a.docCount, b.docCount);
    ASSERT_EQ(a.idf, b.idf);
    ASSERT_EQ(a.maxTermScore, b.maxTermScore);
    ASSERT_EQ(a.docPayload, b.docPayload);
    ASSERT_EQ(a.tfPayload, b.tfPayload);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        ASSERT_EQ(a.blocks[i].firstDoc, b.blocks[i].firstDoc);
        ASSERT_EQ(a.blocks[i].lastDoc, b.blocks[i].lastDoc);
        ASSERT_EQ(a.blocks[i].maxTermScore, b.blocks[i].maxTermScore);
        ASSERT_EQ(a.blocks[i].numElems, b.blocks[i].numElems);
    }
}

TEST_F(ShardingTest, ShardsPartitionThePostings)
{
    auto shards = corpus_->buildShardedIndex(*terms_, 4);
    auto global = corpus_->buildIndex(*terms_);
    ASSERT_EQ(shards.shards.size(), 4u);

    for (TermId t : *terms_) {
        index::PostingList merged;
        for (std::uint32_t s = 0; s < 4; ++s) {
            const auto &list = shards.shards[s].list(t);
            if (list.docCount == 0)
                continue;
            for (auto p : index::decodeAll(list)) {
                p.doc = shards.map.toGlobal(s, p.doc);
                merged.push_back(p);
            }
        }
        EXPECT_EQ(merged, index::decodeAll(global.list(t)))
            << "term " << t;
    }
}

TEST_F(ShardingTest, ShardsStoreGlobalScoringStats)
{
    auto shards = corpus_->buildShardedIndex(*terms_, 4);
    auto global = corpus_->buildIndex(*terms_);

    for (TermId t : *terms_) {
        for (std::uint32_t s = 0; s < 4; ++s) {
            const auto &list = shards.shards[s].list(t);
            if (list.docCount == 0)
                continue;
            // Same stored idf float as the unsharded index: the df
            // baked in is the corpus-wide one.
            EXPECT_EQ(list.idf, global.list(t).idf)
                << "term " << t << " shard " << s;
        }
    }
    // Norms: every document's stored norm matches the global build.
    for (std::uint32_t s = 0; s < 4; ++s) {
        for (DocId d = 0; d < shards.shards[s].numDocs(); ++d) {
            DocId g = shards.map.toGlobal(s, d);
            EXPECT_EQ(shards.shards[s].doc(d).norm,
                      global.doc(g).norm);
        }
    }
}

TEST_F(ShardingTest, BuildIsReproducibleAcrossThreadCounts)
{
    common::ThreadPool::setGlobalThreads(1);
    auto serial = corpus_->buildShardedIndex(*terms_, 4);
    common::ThreadPool::setGlobalThreads(8);
    auto parallel = corpus_->buildShardedIndex(*terms_, 4);

    ASSERT_EQ(serial.shards.size(), parallel.shards.size());
    for (std::size_t s = 0; s < serial.shards.size(); ++s) {
        ASSERT_EQ(serial.shards[s].numTerms(),
                  parallel.shards[s].numTerms());
        for (TermId t = 0; t < serial.shards[s].numTerms(); ++t)
            expectListsEqual(serial.shards[s].list(t),
                             parallel.shards[s].list(t));
    }
}

TEST_F(ShardingTest, ReshardingABuiltIndexMatchesDirectShardBuild)
{
    auto direct = corpus_->buildShardedIndex(*terms_, 4);
    auto reshard =
        index::shardIndex(corpus_->buildIndex(*terms_), 4);

    ASSERT_EQ(direct.shards.size(), reshard.shards.size());
    for (std::size_t s = 0; s < direct.shards.size(); ++s) {
        ASSERT_EQ(direct.shards[s].numTerms(),
                  reshard.shards[s].numTerms());
        for (TermId t = 0; t < direct.shards[s].numTerms(); ++t)
            expectListsEqual(direct.shards[s].list(t),
                             reshard.shards[s].list(t));
    }
}

// ---------------------------------------------------------------
// The tentpole property: shard count never changes results.
// ---------------------------------------------------------------

TEST_F(ShardingTest, MergedTopKIsInvariantAcrossShardCounts)
{
    // Reference: one device over the whole corpus.
    accel::Device single;
    single.loadIndex(corpus_->buildIndex(*terms_));
    auto reference = single.searchBatch(*queries_);

    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        api::ShardedDeviceConfig cfg;
        cfg.shards = shards;
        api::ShardedDevice device(cfg);
        device.loadShards(corpus_->buildShardedIndex(*terms_, shards));

        auto outcome = device.searchBatch(*queries_);
        ASSERT_EQ(outcome.perQuery.size(),
                  reference.perQuery.size());
        for (std::size_t q = 0; q < outcome.perQuery.size(); ++q) {
            // Bit-identical: same docs, same score floats, same
            // order (incl. ties broken on global docID).
            EXPECT_EQ(outcome.perQuery[q], reference.perQuery[q])
                << "query " << q << " at " << shards << " shards";
        }
    }
}

TEST_F(ShardingTest, MergedTopKMatchesNaiveOracle)
{
    auto global = corpus_->buildIndex(*terms_);
    api::ShardedDeviceConfig cfg;
    cfg.shards = 4;
    api::ShardedDevice device(cfg);
    device.loadShards(corpus_->buildShardedIndex(*terms_, 4));

    for (std::size_t q = 0; q < 8; ++q) {
        const auto &query = (*queries_)[q];
        auto outcome = device.search(query);
        auto oracle = engine::naiveTopK(
            global, engine::planQuery(query), cfg.device.k);
        EXPECT_EQ(outcome.topk, oracle) << "query " << q;
    }
}

TEST_F(ShardingTest, AggregatesAreDeterministicAcrossRuns)
{
    // Same shard count, two fresh device stacks, different thread
    // counts: per-query aggregates must be bit-identical (they feed
    // experiment JSON that diffing relies on).
    auto runOnce = [&](std::size_t threads) {
        common::ThreadPool::setGlobalThreads(threads);
        api::ShardedDeviceConfig cfg;
        cfg.shards = 4;
        api::ShardedDevice device(cfg);
        device.loadShards(corpus_->buildShardedIndex(*terms_, 4));
        device.enableQuerySummaries(true);
        device.searchBatch(*queries_);
        return device.aggregatedSummaries();
    };
    auto a = runOnce(1);
    auto b = runOnce(8);
    ASSERT_EQ(a.size(), queries_->size());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "summary " << i;
}

TEST_F(ShardingTest, PerShardSummariesSumToAggregates)
{
    api::ShardedDeviceConfig cfg;
    cfg.shards = 4;
    api::ShardedDevice device(cfg);
    device.loadShards(corpus_->buildShardedIndex(*terms_, 4));
    device.enableQuerySummaries(true);
    device.searchBatch(*queries_);

    auto agg = device.aggregatedSummaries();
    ASSERT_EQ(agg.size(), queries_->size());
    for (std::size_t q = 0; q < agg.size(); ++q) {
        std::uint64_t docsScored = 0;
        std::uint64_t cyclesMax = 0;
        for (std::uint32_t s = 0; s < device.numShards(); ++s) {
            docsScored += device.shardSummaries(s)[q].docsScored;
            cyclesMax = std::max(cyclesMax,
                                 device.shardSummaries(s)[q].cycles);
        }
        EXPECT_EQ(agg[q].docsScored, docsScored);
        EXPECT_EQ(agg[q].cycles, cyclesMax);
    }
}

TEST_F(ShardingTest, ExpressionQueriesWorkOnShardedDevice)
{
    api::ShardedDeviceConfig cfg;
    cfg.shards = 2;
    api::ShardedDevice device(cfg);
    device.loadShards(corpus_->buildShardedIndex(*terms_, 2));

    accel::Device single;
    single.loadIndex(corpus_->buildIndex(*terms_));

    TermId a = (*terms_)[0];
    TermId b = (*terms_)[1];
    std::string expr = "\"t" + std::to_string(a) + "\" OR \"t" +
                       std::to_string(b) + "\"";
    EXPECT_EQ(device.search(expr).topk, single.search(expr).topk);
}

TEST_F(ShardingTest, StatsJsonCoversEveryShard)
{
    api::ShardedDeviceConfig cfg;
    cfg.shards = 2;
    api::ShardedDevice device(cfg);
    device.loadShards(corpus_->buildShardedIndex(*terms_, 2));
    device.enableStatsCapture(true);
    device.searchBatch(*queries_);

    std::ostringstream os;
    device.writeStatsJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"shards\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"shard_0\""), std::string::npos);
    EXPECT_NE(json.find("\"shard_1\""), std::string::npos);
    EXPECT_NE(json.find("\"doc_bases\""), std::string::npos);
}

} // namespace
