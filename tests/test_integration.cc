/**
 * @file
 * Cross-module integration tests: a generated workload flows
 * through corpus -> index -> plans -> every system's trace +
 * replay, asserting the invariants the whole reproduction rests on:
 *  - every execution mode returns the brute-force oracle's top-k;
 *  - traces account consistently (bytes, blocks, categories);
 *  - replays are finite, deterministic and ordered sanely across
 *    systems.
 */

#include <gtest/gtest.h>

#include "engine/execute.h"
#include "index/serialize.h"
#include "engine/plan.h"
#include "model/runner.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;
using namespace boss::model;

struct IntegrationFixture : ::testing::Test
{
    static workload::Corpus &
    corpus()
    {
        static workload::Corpus c = [] {
            workload::CorpusConfig cfg;
            cfg.numDocs = 60000;
            cfg.vocabSize = 5000;
            cfg.maxDfFraction = 0.2;
            cfg.seed = 2026;
            return workload::Corpus(cfg);
        }();
        return c;
    }

    static std::vector<workload::Query> &
    queries()
    {
        static std::vector<workload::Query> q = [] {
            workload::QueryWorkloadConfig cfg;
            cfg.vocabSize = 5000;
            cfg.queriesPerBucket = 12;
            cfg.seed = 11;
            return workload::makeWorkload(cfg);
        }();
        return q;
    }

    static index::InvertedIndex &
    idx()
    {
        static index::InvertedIndex i =
            corpus().buildIndex(workload::collectTerms(queries()));
        return i;
    }

    static index::MemoryLayout &
    layout()
    {
        static index::MemoryLayout l(idx(), 0x10000, 256);
        return l;
    }
};

TEST_F(IntegrationFixture, AllSystemsMatchOracleOnFullWorkload)
{
    const SystemKind kinds[] = {
        SystemKind::Lucene, SystemKind::Iiu, SystemKind::Boss,
        SystemKind::BossExhaustive, SystemKind::BossBlockOnly,
    };
    const std::size_t k = 50;
    for (const auto &q : queries()) {
        auto plan = engine::planQuery(q);
        auto oracle = engine::naiveTopK(idx(), plan, k);
        for (SystemKind kind : kinds) {
            TraceOptions opt = traceOptionsFor(kind, k);
            std::vector<engine::Result> got;
            buildTrace(idx(), layout(), plan, opt, &got);
            ASSERT_EQ(got.size(), oracle.size())
                << systemName(kind) << " on " << q.toExpression();
            for (std::size_t i = 0; i < got.size(); ++i) {
                ASSERT_EQ(got[i].doc, oracle[i].doc)
                    << systemName(kind) << " rank " << i << " on "
                    << q.toExpression();
                ASSERT_FLOAT_EQ(got[i].score, oracle[i].score)
                    << systemName(kind) << " rank " << i;
            }
        }
    }
}

TEST_F(IntegrationFixture, TraceAccountingInvariants)
{
    for (const auto &q : queries()) {
        auto plan = engine::planQuery(q);
        auto trace = buildTrace(idx(), layout(), plan,
                                traceOptionsFor(SystemKind::Boss));
        // Block loads appear as LdList segments with requests.
        std::uint64_t docBlockReqs = 0;
        for (const auto &seg : trace.segments) {
            for (const auto &r : seg.reqs) {
                EXPECT_GT(r.bytes, 0u);
                EXPECT_GE(r.addr, layout().base());
                if (r.category == mem::Category::LdList && !r.write &&
                    seg.work.fetchBlocks > 0) {
                    ++docBlockReqs;
                }
            }
        }
        EXPECT_GE(docBlockReqs, trace.blocksLoaded);
        EXPECT_EQ(trace.numTerms, q.terms.size());
        // Scored docs never exceed candidates; skip + evaluated is
        // bounded by the total postings touched.
        std::uint64_t postings = 0;
        for (TermId t : plan.allTerms)
            postings += idx().list(t).docCount;
        EXPECT_LE(trace.evaluatedDocs, postings);
    }
}

TEST_F(IntegrationFixture, SystemsOrderSanely)
{
    // On the whole workload at 8 cores: BOSS > IIU and
    // BOSS > Lucene in throughput.
    std::map<SystemKind, double> qps;
    for (SystemKind kind :
         {SystemKind::Lucene, SystemKind::Iiu, SystemKind::Boss}) {
        auto traces =
            buildTraces(idx(), layout(), queries(), kind);
        SystemConfig cfg;
        cfg.kind = kind;
        cfg.cores = 8;
        qps[kind] = replayTraces(traces, cfg).run.qps;
    }
    EXPECT_GT(qps[SystemKind::Boss], qps[SystemKind::Iiu]);
    EXPECT_GT(qps[SystemKind::Boss], qps[SystemKind::Lucene]);
}

TEST_F(IntegrationFixture, SjfImprovesMedianLatency)
{
    auto traces = buildTraces(idx(), layout(), queries(),
                              SystemKind::Boss);
    SystemConfig fifo;
    fifo.cores = 4;
    SystemConfig sjf = fifo;
    sjf.sched = SchedPolicy::Sjf;
    auto mFifo = replayTraces(traces, fifo);
    auto mSjf = replayTraces(traces, sjf);
    EXPECT_LE(mSjf.run.latencyP50, mFifo.run.latencyP50);
    // Work-conserving: same makespan modulo dispatch-order effects.
    EXPECT_NEAR(mSjf.run.seconds, mFifo.run.seconds,
                mFifo.run.seconds * 0.25);
}

TEST_F(IntegrationFixture, SerializationPreservesResults)
{
    std::string path = testing::TempDir() + "boss_integration.idx";
    index::saveIndexFile(idx(), path);
    auto loaded = index::loadIndexFile(path);
    std::remove(path.c_str());

    auto q = queries()[0];
    auto plan = engine::planQuery(q);
    auto a = engine::naiveTopK(idx(), plan, 20);
    auto b = engine::naiveTopK(loaded, plan, 20);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].doc, b[i].doc);
        EXPECT_FLOAT_EQ(a[i].score, b[i].score);
    }
}

TEST_F(IntegrationFixture, BankedDramReplaysAgreeWithRateModel)
{
    auto traces = buildTraces(idx(), layout(), queries(),
                              SystemKind::Boss);
    SystemConfig rate;
    rate.mem = mem::dramConfig();
    SystemConfig banked;
    banked.mem = mem::dramBankedConfig();
    double a = replayTraces(traces, rate).run.qps;
    double b = replayTraces(traces, banked).run.qps;
    // The abstractions agree within ~2x (typically a few percent).
    EXPECT_GT(b, a * 0.5);
    EXPECT_LT(b, a * 2.0);
}

} // namespace
