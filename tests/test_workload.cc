/**
 * @file
 * Tests for the workload generators: synthetic streams (Fig. 3
 * inputs), the corpus generator, and the query sampler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/corpus.h"
#include "workload/queries.h"
#include "workload/synthetic_streams.h"

namespace
{

using namespace boss;
using namespace boss::workload;

// ---------------------------------------------------------------
// Synthetic streams.
// ---------------------------------------------------------------

class StreamShapes : public ::testing::TestWithParam<StreamKind>
{
};

TEST_P(StreamShapes, DeterministicAndSized)
{
    auto a = makeStream(GetParam(), 5000, 42);
    auto b = makeStream(GetParam(), 5000, 42);
    EXPECT_EQ(a.size(), 5000u);
    EXPECT_EQ(a, b);
    auto c = makeStream(GetParam(), 5000, 43);
    EXPECT_NE(a, c);
}

TEST_P(StreamShapes, CompressibleByAllApplicableSchemes)
{
    auto stream = makeStream(GetParam(), 20000, 7);
    for (compress::Scheme s : compress::kFig3Schemes) {
        double ratio = compressionRatio(stream, s);
        if (ratio == 0.0)
            continue; // scheme can't represent this stream
        EXPECT_GT(ratio, 0.5) << schemeName(s);
    }
    EXPECT_GT(hybridCompressionRatio(stream), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, StreamShapes, ::testing::ValuesIn(kAllStreams),
    [](const ::testing::TestParamInfo<StreamKind> &info) {
        std::string name(streamName(info.param));
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(Streams, HybridAtLeastMatchesBestSingle)
{
    for (StreamKind kind : kAllStreams) {
        auto stream = makeStream(kind, 20000, 11);
        double best = 0.0;
        for (compress::Scheme s : compress::kFig3Schemes)
            best = std::max(best, compressionRatio(stream, s));
        // Hybrid picks per block, so it can only do better than the
        // best whole-stream scheme.
        EXPECT_GE(hybridCompressionRatio(stream) + 1e-9, best)
            << streamName(kind);
    }
}

TEST(Streams, DenseCompressesBetterThanSparse)
{
    auto sparse = makeStream(StreamKind::UniformSparse, 50000, 3);
    auto dense = makeStream(StreamKind::UniformDense, 50000, 3);
    EXPECT_GT(hybridCompressionRatio(dense),
              hybridCompressionRatio(sparse));
}

TEST(Streams, OutlierFractionMatters)
{
    auto o10 = makeStream(StreamKind::Outlier10, 50000, 5);
    auto o30 = makeStream(StreamKind::Outlier30, 50000, 5);
    // More outliers -> worse compression.
    EXPECT_GT(hybridCompressionRatio(o10),
              hybridCompressionRatio(o30));
}

// ---------------------------------------------------------------
// Corpus generator.
// ---------------------------------------------------------------

TEST(CorpusTest, DocLengthsNearConfiguredMean)
{
    CorpusConfig cfg;
    cfg.numDocs = 20000;
    cfg.avgDocLen = 300;
    Corpus corpus(cfg);
    double sum = 0;
    for (auto l : corpus.docLengths())
        sum += l;
    double mean = sum / cfg.numDocs;
    EXPECT_NEAR(mean, 300.0, 45.0);
}

TEST(CorpusTest, PostingsValidAndDeterministic)
{
    CorpusConfig cfg;
    cfg.numDocs = 10000;
    cfg.vocabSize = 1000;
    Corpus corpus(cfg);
    for (TermId t : {0u, 10u, 500u, 999u}) {
        auto a = corpus.postings(t);
        auto b = corpus.postings(t);
        EXPECT_EQ(a, b);
        EXPECT_TRUE(index::isValidPostingList(a));
        EXPECT_FALSE(a.empty());
        for (const auto &p : a) {
            EXPECT_LT(p.doc, cfg.numDocs);
            EXPECT_GE(p.tf, 1u);
        }
    }
}

TEST(CorpusTest, DfFollowsRankOrder)
{
    CorpusConfig cfg;
    cfg.numDocs = 50000;
    cfg.vocabSize = 10000;
    Corpus corpus(cfg);
    // Popular terms have much longer lists than rare ones.
    EXPECT_GT(corpus.postings(0).size(), corpus.postings(100).size());
    EXPECT_GT(corpus.postings(100).size(),
              corpus.postings(9000).size());
    // Sampled df is within a factor ~2 of the analytic expectation.
    double expect = corpus.expectedDf(5);
    double actual = static_cast<double>(corpus.postings(5).size());
    EXPECT_GT(actual, expect * 0.5);
    EXPECT_LT(actual, expect * 2.0);
}

TEST(CorpusTest, BuildIndexMaterializesRequestedTerms)
{
    CorpusConfig cfg;
    cfg.numDocs = 5000;
    cfg.vocabSize = 100;
    Corpus corpus(cfg);
    auto index = corpus.buildIndex({3, 7});
    EXPECT_EQ(index.numDocs(), cfg.numDocs);
    EXPECT_EQ(index.list(3).docCount, corpus.postings(3).size());
    EXPECT_EQ(index.list(7).docCount, corpus.postings(7).size());
    // Unrequested terms are empty placeholders.
    EXPECT_EQ(index.list(5).docCount, 0u);
}

TEST(CorpusTest, PresetsDiffer)
{
    CorpusConfig cw = clueWebConfig();
    CorpusConfig cc = ccNewsConfig();
    EXPECT_NE(cw.numDocs, cc.numDocs);
    EXPECT_GT(cw.avgDocLen, cc.avgDocLen);
}

// ---------------------------------------------------------------
// Query workload.
// ---------------------------------------------------------------

TEST(Queries, BucketsAndTypes)
{
    QueryWorkloadConfig cfg;
    cfg.vocabSize = 10000;
    cfg.queriesPerBucket = 100;
    auto all = makeWorkload(cfg);
    EXPECT_EQ(all.size(), 300u);

    std::size_t oneTerm = 0, twoTerm = 0, fourTerm = 0;
    for (const auto &q : all) {
        EXPECT_EQ(q.terms.size(), queryTypeTerms(q.type));
        switch (queryTypeTerms(q.type)) {
          case 1: ++oneTerm; break;
          case 2: ++twoTerm; break;
          case 4: ++fourTerm; break;
          default: FAIL();
        }
        std::set<TermId> distinct(q.terms.begin(), q.terms.end());
        EXPECT_EQ(distinct.size(), q.terms.size());
        for (TermId t : q.terms)
            EXPECT_LT(t, cfg.vocabSize);
    }
    EXPECT_EQ(oneTerm, 100u);
    EXPECT_EQ(twoTerm, 100u);
    EXPECT_EQ(fourTerm, 100u);

    // Every type shows up in a 100-query bucket with high probability.
    for (QueryType t : kAllQueryTypes)
        EXPECT_FALSE(filterByType(all, t).empty())
            << queryTypeName(t);
}

TEST(Queries, Deterministic)
{
    QueryWorkloadConfig cfg;
    auto a = makeWorkload(cfg);
    auto b = makeWorkload(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].type, b[i].type);
        EXPECT_EQ(a[i].terms, b[i].terms);
    }
}

TEST(Queries, ExpressionRendering)
{
    Query q;
    q.type = QueryType::Q6;
    q.terms = {1, 2, 3, 4};
    EXPECT_EQ(q.toExpression(),
              "\"t1\" AND (\"t2\" OR \"t3\" OR \"t4\")");
    q.type = QueryType::Q2;
    q.terms = {5, 9};
    EXPECT_EQ(q.toExpression(), "\"t5\" AND \"t9\"");
    q.type = QueryType::Q1;
    q.terms = {7};
    EXPECT_EQ(q.toExpression(), "\"t7\"");
}

TEST(Queries, CollectTermsDedups)
{
    Query a{QueryType::Q2, {1, 2}};
    Query b{QueryType::Q2, {2, 3}};
    auto terms = collectTerms({a, b});
    EXPECT_EQ(terms, (std::vector<TermId>{1, 2, 3}));
}

TEST(Queries, SampleQueriesIsDeterministic)
{
    QueryWorkloadConfig cfg;
    auto a = sampleQueries(cfg, 64);
    auto b = sampleQueries(cfg, 64);
    ASSERT_EQ(a.size(), 64u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].type, b[i].type);
        EXPECT_EQ(a[i].terms, b[i].terms);
        EXPECT_EQ(a[i].terms.size(), queryTypeTerms(a[i].type));
    }
}

TEST(Queries, SampleQueriesSlotsAreOrderIndependent)
{
    // Split seeds, not shared state: a shorter run is an exact
    // prefix of a longer one, so per-shard / per-worker generation
    // of slot ranges agrees with a serial pass regardless of who
    // generates which slots.
    QueryWorkloadConfig cfg;
    auto all = sampleQueries(cfg, 64);
    auto prefix = sampleQueries(cfg, 16);
    for (std::size_t i = 0; i < prefix.size(); ++i) {
        EXPECT_EQ(prefix[i].type, all[i].type);
        EXPECT_EQ(prefix[i].terms, all[i].terms);
    }
}

TEST(Rng, SplitSeedStreamsAreIndependentOfSiblingCount)
{
    // splitSeed(seed, i) depends only on (seed, i): drawing stream 5
    // first or last yields the same generator.
    boss::Rng a(boss::splitSeed(42, 5));
    for (std::uint64_t other : {0ull, 1ull, 99ull})
        (void)boss::splitSeed(42, other);
    boss::Rng b(boss::splitSeed(42, 5));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
    // Adjacent streams do not collide.
    EXPECT_NE(boss::splitSeed(42, 0), boss::splitSeed(42, 1));
    EXPECT_NE(boss::splitSeed(42, 0), boss::splitSeed(43, 0));
}

} // namespace
