/**
 * @file
 * Out-of-core differential tests.
 *
 * Two equivalences anchor the out-of-core tier: the bounded-memory
 * external-merge build must emit the exact bytes the in-memory
 * builder does (any budget, any number of spill runs), and the mmap
 * load path must serve the exact results the heap load path does.
 * Both are differential sweeps against the in-memory reference, so a
 * regression in either path shows up as a byte or result mismatch,
 * not a plausible-looking wrong answer.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "boss/device.h"
#include "index/external_build.h"
#include "index/serialize.h"
#include "index/text_builder.h"

namespace
{

using namespace boss;

/**
 * Deterministic synthetic corpus: Zipf-ish draws from a fixed word
 * pool, so repeated runs (and the two builders) see identical text.
 */
std::vector<std::string>
makeDocs(std::size_t count, std::uint32_t seed = 99)
{
    static const std::vector<std::string> kPool = {
        "storage",   "class",     "memory",   "bandwidth",
        "search",    "accelerator", "index",  "posting",
        "compressed", "block",    "metadata", "score",
        "ranking",   "query",     "latency",  "throughput",
        "device",    "channel",   "random",   "sequential",
        "decode",    "kernel",    "stream",   "prefetch",
        "cache",     "tier",      "dram",     "media",
        "crc",       "fault",     "retry",    "segment"};
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> lenDist(6, 24);
    // Zipf-ish skew: square a uniform draw so low pool indices (the
    // "popular" words) dominate, giving realistic term repetition.
    std::uniform_real_distribution<double> skew(0.0, 1.0);
    std::vector<std::string> docs;
    docs.reserve(count);
    for (std::size_t d = 0; d < count; ++d) {
        std::string doc;
        std::size_t len = lenDist(rng);
        for (std::size_t w = 0; w < len; ++w) {
            double u = skew(rng);
            std::size_t idx = static_cast<std::size_t>(
                u * u * static_cast<double>(kPool.size()));
            if (idx >= kPool.size())
                idx = kPool.size() - 1;
            if (!doc.empty())
                doc += ' ';
            doc += kPool[idx];
        }
        docs.push_back(std::move(doc));
    }
    return docs;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "oocore_" + name;
}

/** The in-memory reference file for @p docs. */
std::string
writeReference(const std::vector<std::string> &docs,
               const std::string &path)
{
    index::TextIndexBuilder builder;
    for (const auto &d : docs)
        builder.addDocument(d);
    index::saveTextIndexFile(builder.build(), path);
    return readFile(path);
}

// ---------------------------------------------------------------
// External-merge build vs in-memory build: byte identity.
// ---------------------------------------------------------------

TEST(ExternalBuildTest, ByteIdenticalAcrossBudgetSweep)
{
    auto docs = makeDocs(1500);
    const std::string refPath = tmpPath("ref.idx");
    const std::string ref = writeReference(docs, refPath);
    ASSERT_GT(ref.size(), 1000u);

    // Budgets from "spills every few documents" to "never spills".
    const std::vector<std::uint64_t> budgets = {
        1 << 10, 8 << 10, 64 << 10, 256 << 20};
    for (std::uint64_t budget : budgets) {
        index::ExternalBuildConfig cfg;
        cfg.memoryBudgetBytes = budget;
        cfg.spillDir = tmpPath("spill");
        index::ExternalTextIndexer indexer(cfg);
        for (const auto &d : docs)
            indexer.addDocument(d);
        const std::string outPath = tmpPath("ext.idx");
        auto stats = indexer.finish(outPath);

        EXPECT_EQ(stats.numDocs, docs.size());
        EXPECT_EQ(readFile(outPath), ref)
            << "budget " << budget << " produced different bytes ("
            << stats.spillRuns << " spill runs)";
        // The spill scratch must not outlive the build.
        EXPECT_FALSE(std::filesystem::exists(cfg.spillDir));
        std::filesystem::remove(outPath);
    }
}

TEST(ExternalBuildTest, TinyBudgetForcesMultipleRuns)
{
    auto docs = makeDocs(800, 7);
    index::ExternalBuildConfig cfg;
    cfg.memoryBudgetBytes = 1 << 10; // 1 KB: spills constantly
    cfg.spillDir = tmpPath("runs.spill");
    index::ExternalTextIndexer indexer(cfg);
    for (const auto &d : docs)
        indexer.addDocument(d);
    const std::string outPath = tmpPath("runs.idx");
    auto stats = indexer.finish(outPath);

    EXPECT_GE(stats.spillRuns, 2u)
        << "budget too large to exercise the merge path";
    EXPECT_GT(stats.postingsSpilled, 0u);
    EXPECT_GT(stats.spillBytes, 0u);

    const std::string refPath = tmpPath("runs_ref.idx");
    EXPECT_EQ(readFile(outPath), writeReference(docs, refPath));
    std::filesystem::remove(outPath);
    std::filesystem::remove(refPath);
}

TEST(ExternalBuildTest, UnboundedBudgetNeverSpills)
{
    auto docs = makeDocs(300, 3);
    index::ExternalBuildConfig cfg;
    cfg.spillDir = tmpPath("nospill.spill");
    index::ExternalTextIndexer indexer(cfg);
    for (const auto &d : docs)
        indexer.addDocument(d);
    const std::string outPath = tmpPath("nospill.idx");
    auto stats = indexer.finish(outPath);
    EXPECT_EQ(stats.spillRuns, 0u);
    EXPECT_EQ(stats.postingsSpilled, 0u);
    EXPECT_FALSE(std::filesystem::exists(cfg.spillDir));
    std::filesystem::remove(outPath);
}

// ---------------------------------------------------------------
// mmap load vs heap load: bit-identical serving.
// ---------------------------------------------------------------

class MappedLoadTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        path_ = new std::string(tmpPath("mapped.idx"));
        auto docs = makeDocs(2000, 11);
        index::TextIndexBuilder builder;
        for (const auto &d : docs)
            builder.addDocument(d);
        index::saveTextIndexFile(builder.build(), *path_);
    }

    static void
    TearDownTestSuite()
    {
        std::filesystem::remove(*path_);
        delete path_;
        path_ = nullptr;
    }

    /** The golden query set: every operator, popular + rare terms. */
    static std::vector<std::string>
    goldenQueries()
    {
        return {
            "\"storage\"",
            "\"memory\" AND \"bandwidth\"",
            "\"search\" OR \"accelerator\"",
            "\"storage\" AND \"class\" AND \"memory\"",
            "\"cache\" OR \"tier\" OR \"dram\"",
            "\"segment\" AND \"crc\"",
            "\"query\" OR \"latency\" OR \"throughput\" OR "
            "\"decode\"",
        };
    }

    static std::string *path_;
};

std::string *MappedLoadTest::path_ = nullptr;

TEST_F(MappedLoadTest, TopKBitIdenticalToHeapLoad)
{
    accel::Device heap;
    heap.loadTextIndexFile(*path_);
    accel::Device mapped;
    mapped.loadMappedTextIndexFile(*path_);

    ASSERT_EQ(heap.index().numDocs(), mapped.index().numDocs());
    ASSERT_EQ(heap.index().numTerms(), mapped.index().numTerms());

    for (const std::string &q : goldenQueries()) {
        auto ref = heap.search(q);
        auto out = mapped.search(q);
        EXPECT_EQ(out.topk, ref.topk) << q;
        EXPECT_EQ(out.evaluatedDocs, ref.evaluatedDocs) << q;
        EXPECT_EQ(out.simSeconds, ref.simSeconds) << q;
        // Clean data: first-touch verification never drops a block.
        EXPECT_EQ(out.blocksDropped, 0u) << q;
    }
}

TEST_F(MappedLoadTest, PayloadsStayViewsIntoTheMapping)
{
    auto mapped = index::MappedIndex::open(*path_);
    ASSERT_TRUE(mapped->hasLexicon());
    const index::InvertedIndex &idx = mapped->index();
    std::size_t views = 0;
    for (TermId t = 0; t < idx.numTerms(); ++t) {
        const auto &list = idx.list(t);
        if (list.docPayload.empty())
            continue;
        EXPECT_TRUE(list.docPayload.isView());
        // The view must point inside the mapping (fileOffset asserts
        // order; check the extent too).
        std::size_t off = mapped->fileOffset(list.docPayload.data());
        EXPECT_LT(off, mapped->fileSize());
        ++views;
    }
    EXPECT_GT(views, 0u);
}

TEST_F(MappedLoadTest, TryOpenRejectsJunk)
{
    const std::string junkPath = tmpPath("junk.idx");
    {
        std::ofstream out(junkPath, std::ios::binary);
        out << "this is not an index file, not even close";
    }
    std::string error;
    EXPECT_EQ(index::MappedIndex::tryOpen(junkPath, &error), nullptr);
    EXPECT_FALSE(error.empty());
    std::filesystem::remove(junkPath);
}

} // namespace
