/**
 * @file
 * Unit and property tests for the compression codecs.
 *
 * The parameterized suites sweep every scheme over a range of value
 * distributions to establish the round-trip invariant; scheme-specific
 * suites pin down format details.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/bitops.h"
#include "compress/bitpacking.h"
#include "compress/codec.h"
#include "compress/datapath.h"
#include "compress/pfordelta.h"
#include "compress/simple16.h"
#include "compress/simple8b.h"
#include "compress/varbyte.h"

namespace
{

using namespace boss::compress;
using boss::Rng;

std::vector<std::uint32_t>
randomValues(std::size_t n, std::uint32_t maxBits, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> v(n);
    for (auto &x : v)
        x = static_cast<std::uint32_t>(rng.next()) &
            boss::maskLow(maxBits);
    return v;
}

// ---------------------------------------------------------------
// Property: encode/decode round-trips for every scheme x shape.
// ---------------------------------------------------------------

struct RoundTripCase
{
    Scheme scheme;
    std::uint32_t maxBits;
    std::size_t count;
};

class CodecRoundTrip : public ::testing::TestWithParam<RoundTripCase>
{
};

TEST_P(CodecRoundTrip, RandomValues)
{
    const auto &param = GetParam();
    const Codec &codec = codecFor(param.scheme);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto values = randomValues(param.count, param.maxBits, seed);
        BlockEncoding enc;
        ASSERT_TRUE(codec.encode(values, enc))
            << codec.name() << " failed to encode";
        std::vector<std::uint32_t> decoded(values.size());
        codec.decode(enc.bytes, decoded);
        EXPECT_EQ(decoded, values) << codec.name() << " seed " << seed;
    }
}

std::vector<RoundTripCase>
roundTripCases()
{
    std::vector<RoundTripCase> cases;
    for (Scheme s : kAllSchemes) {
        for (std::uint32_t bits : {1u, 4u, 7u, 13u, 20u, 27u}) {
            for (std::size_t count : {1u, 7u, 128u}) {
                cases.push_back({s, bits, count});
            }
        }
    }
    // Wide values: only schemes that support >= 2^28.
    for (Scheme s : {Scheme::BP, Scheme::VB, Scheme::PFD,
                     Scheme::OptPFD, Scheme::S8b}) {
        cases.push_back({s, 32, 128});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CodecRoundTrip, ::testing::ValuesIn(roundTripCases()),
    [](const ::testing::TestParamInfo<RoundTripCase> &info) {
        return std::string(schemeName(info.param.scheme)) + "_bits" +
               std::to_string(info.param.maxBits) + "_n" +
               std::to_string(info.param.count);
    });

// ---------------------------------------------------------------
// Property: all-zero and all-equal blocks round-trip.
// ---------------------------------------------------------------

class CodecDegenerate : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(CodecDegenerate, AllZeros)
{
    const Codec &codec = codecFor(GetParam());
    std::vector<std::uint32_t> values(128, 0);
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    std::vector<std::uint32_t> decoded(values.size());
    codec.decode(enc.bytes, decoded);
    EXPECT_EQ(decoded, values);
}

TEST_P(CodecDegenerate, AllEqual)
{
    const Codec &codec = codecFor(GetParam());
    std::vector<std::uint32_t> values(128, 123456);
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    std::vector<std::uint32_t> decoded(values.size());
    codec.decode(enc.bytes, decoded);
    EXPECT_EQ(decoded, values);
}

TEST_P(CodecDegenerate, SingleValue)
{
    const Codec &codec = codecFor(GetParam());
    std::vector<std::uint32_t> values{42};
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    std::vector<std::uint32_t> decoded(1);
    codec.decode(enc.bytes, decoded);
    EXPECT_EQ(decoded[0], 42u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CodecDegenerate, ::testing::ValuesIn(kAllSchemes),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        return std::string(schemeName(info.param));
    });

// ---------------------------------------------------------------
// Scheme-specific behavior.
// ---------------------------------------------------------------

TEST(BitPacking, UsesMaxWidth)
{
    BitPackingCodec codec;
    std::vector<std::uint32_t> values(128, 1);
    values[7] = 0xFFFF; // forces 16-bit width
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    EXPECT_EQ(enc.bitWidth, 16);
    EXPECT_EQ(enc.bytes.size(), 1 + (128 * 16 + 7) / 8);
}

TEST(VarByte, SmallValuesOneByte)
{
    VarByteCodec codec;
    std::vector<std::uint32_t> values = {0, 1, 127};
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    EXPECT_EQ(enc.bytes.size(), 3u);
}

TEST(VarByte, BoundaryLengths)
{
    VarByteCodec codec;
    std::vector<std::uint32_t> values = {127, 128, 16383, 16384,
                                         0xFFFFFFFFu};
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    // 1 + 2 + 2 + 3 + 5 bytes.
    EXPECT_EQ(enc.bytes.size(), 13u);
    std::vector<std::uint32_t> decoded(values.size());
    codec.decode(enc.bytes, decoded);
    EXPECT_EQ(decoded, values);
}

TEST(PForDelta, ExceptionsPatched)
{
    PForDeltaCodec codec;
    std::vector<std::uint32_t> values(128, 3); // 2 bits
    values[5] = 1 << 20;
    values[100] = (1 << 25) + 7;
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    EXPECT_EQ(enc.exceptionCount, 2);
    EXPECT_LE(enc.bitWidth, 3); // 90th percentile width stays small
    std::vector<std::uint32_t> decoded(values.size());
    codec.decode(enc.bytes, decoded);
    EXPECT_EQ(decoded, values);
}

TEST(PForDelta, NinetyPercentRule)
{
    PForDeltaCodec codec;
    // 116 of 128 values (90.6%) need 4 bits, the rest 20: width 4.
    std::vector<std::uint32_t> values;
    for (int i = 0; i < 116; ++i)
        values.push_back(15);
    for (int i = 0; i < 12; ++i)
        values.push_back(1 << 19);
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    EXPECT_EQ(enc.bitWidth, 4);
    EXPECT_EQ(enc.exceptionCount, 12);
}

TEST(OptPFD, NeverLargerThanPFD)
{
    PForDeltaCodec pfd;
    OptPForDeltaCodec opt;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        auto values = randomValues(128, 17, seed);
        // Add a few spikes to create an exception-tradeoff decision.
        values[3] = 1 << 22;
        values[77] = 1 << 23;
        BlockEncoding ep, eo;
        ASSERT_TRUE(pfd.encode(values, ep));
        ASSERT_TRUE(opt.encode(values, eo));
        EXPECT_LE(eo.bytes.size(), ep.bytes.size()) << "seed " << seed;
        std::vector<std::uint32_t> decoded(values.size());
        opt.decode(eo.bytes, decoded);
        EXPECT_EQ(decoded, values);
    }
}

TEST(Simple16, RejectsWideValues)
{
    Simple16Codec codec;
    std::vector<std::uint32_t> values = {1u << 28};
    BlockEncoding enc;
    EXPECT_FALSE(codec.encode(values, enc));
}

TEST(Simple16, DensePackingOfOnes)
{
    Simple16Codec codec;
    std::vector<std::uint32_t> values(128, 1);
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    // 4 full 28x1 words cover 112 values; the 16-value tail packs as
    // one 14x2 word plus one 2x14 word: 6 words = 24 bytes.
    EXPECT_EQ(enc.bytes.size(), 24u);
}

TEST(Simple16, ModeTableInvariants)
{
    for (const auto &mode : Simple16Codec::modeTable()) {
        std::uint32_t bits = 0;
        std::uint32_t count = 0;
        for (std::uint8_t r = 0; r < mode.numRuns; ++r) {
            bits += mode.runs[r].count * mode.runs[r].width;
            count += mode.runs[r].count;
        }
        EXPECT_LE(bits, 28u);
        EXPECT_EQ(count, mode.totalValues);
        EXPECT_GE(count, 1u);
    }
}

TEST(Simple8b, ZeroRunsUseZeroPayload)
{
    Simple8bCodec codec;
    std::vector<std::uint32_t> values(240, 0);
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    EXPECT_EQ(enc.bytes.size(), 8u); // one selector-0 word
    std::vector<std::uint32_t> decoded(values.size());
    codec.decode(enc.bytes, decoded);
    EXPECT_EQ(decoded, values);
}

TEST(Simple8b, ModeTableInvariants)
{
    for (const auto &mode : Simple8bCodec::modeTable()) {
        EXPECT_LE(static_cast<std::uint32_t>(mode.count) * mode.width,
                  60u);
        EXPECT_GE(mode.count, 1u);
    }
}

TEST(Simple8b, SixtyBitValue)
{
    Simple8bCodec codec;
    std::vector<std::uint32_t> values = {0xFFFFFFFFu};
    BlockEncoding enc;
    ASSERT_TRUE(codec.encode(values, enc));
    std::vector<std::uint32_t> decoded(1);
    codec.decode(enc.bytes, decoded);
    EXPECT_EQ(decoded[0], 0xFFFFFFFFu);
}

// ---------------------------------------------------------------
// Hybrid selection.
// ---------------------------------------------------------------

TEST(Hybrid, PicksSmallest)
{
    // Tiny uniform values: S16 (28 x 1-bit per word) should beat VB
    // (1 byte per value) and BP-with-header.
    std::vector<std::uint32_t> ones(128, 1);
    BlockEncoding best;
    Scheme s = pickBestScheme(ones, best);
    std::size_t bestSize = best.bytes.size();
    for (Scheme other : kAllSchemes) {
        BlockEncoding enc;
        if (codecFor(other).encode(ones, enc)) {
            EXPECT_LE(bestSize, enc.bytes.size())
                << "picked " << schemeName(s) << " but "
                << schemeName(other) << " is smaller";
        }
    }
}

TEST(Hybrid, DecodableWithReportedScheme)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint32_t> values(128);
        for (auto &v : values)
            v = 1 + rng.below(1000);
        BlockEncoding best;
        Scheme s = pickBestScheme(values, best);
        std::vector<std::uint32_t> decoded(values.size());
        codecFor(s).decode(best.bytes, decoded);
        EXPECT_EQ(decoded, values);
    }
}

TEST(Hybrid, SkewedFavorsExceptionSchemes)
{
    // Mostly tiny values with rare huge spikes: OptPFD should win
    // over plain BP (which would pay the max width for every slot).
    std::vector<std::uint32_t> values(128, 2);
    values[64] = 1 << 24;
    BlockEncoding bp, best;
    ASSERT_TRUE(codecFor(Scheme::BP).encode(values, bp));
    pickBestScheme(values, best);
    EXPECT_LT(best.bytes.size(), bp.bytes.size());
}

} // namespace

// ---------------------------------------------------------------
// Adversarial differential fuzz: native codecs vs the programmable
// datapath across pathological value patterns.
// ---------------------------------------------------------------

namespace fuzz
{

using boss::compress::BlockEncoding;
using boss::compress::ProgrammableDecompressor;

std::vector<std::uint32_t>
pattern(int kind, std::size_t n, Rng &rng)
{
    std::vector<std::uint32_t> v(n);
    switch (kind) {
      case 0: // sawtooth: alternate tiny / large
        for (std::size_t i = 0; i < n; ++i)
            v[i] = (i % 2 == 0) ? 1u : (1u << 20) + i % 7;
        break;
      case 1: // ascending run
        for (std::size_t i = 0; i < n; ++i)
            v[i] = static_cast<std::uint32_t>(i);
        break;
      case 2: // long zero run with a spike at each end
        std::fill(v.begin(), v.end(), 0u);
        v.front() = 0x0FFFFFFu;
        v.back() = 0x0FFFFFFu;
        break;
      case 3: // powers of two (exercise every bit width)
        for (std::size_t i = 0; i < n; ++i)
            v[i] = 1u << (i % 28);
        break;
      case 4: // random with heavy duplicate blocks
        for (std::size_t i = 0; i < n; ++i)
            v[i] = static_cast<std::uint32_t>(rng.below(4));
        break;
      default: // uniform random under 2^27
        for (std::size_t i = 0; i < n; ++i)
            v[i] = static_cast<std::uint32_t>(rng.next()) &
                   boss::maskLow(27);
        break;
    }
    return v;
}

struct FuzzCase
{
    Scheme scheme;
    int kind;
};

class CodecFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(CodecFuzz, NativeAndDatapathAgree)
{
    const auto &[scheme, kind] = GetParam();
    const Codec &native = codecFor(scheme);
    ProgrammableDecompressor dp =
        ProgrammableDecompressor::forScheme(scheme);
    Rng rng(1000 + kind);
    for (std::size_t n : {1u, 2u, 127u, 128u}) {
        auto values = pattern(kind, n, rng);
        BlockEncoding enc;
        ASSERT_TRUE(native.encode(values, enc))
            << schemeName(scheme) << " kind " << kind << " n " << n;
        std::vector<std::uint32_t> a(n), b(n);
        native.decode(enc.bytes, a);
        dp.decodeValues(enc.bytes, b);
        EXPECT_EQ(a, values)
            << schemeName(scheme) << " kind " << kind << " n " << n;
        EXPECT_EQ(b, values)
            << "datapath, " << schemeName(scheme) << " kind " << kind;
    }
}

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    for (Scheme s : kAllSchemes) {
        for (int kind = 0; kind < 6; ++kind) {
            // Simple16 cannot represent values >= 2^28; every
            // pattern here stays below that by construction.
            cases.push_back({s, kind});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CodecFuzz, ::testing::ValuesIn(fuzzCases()),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        return std::string(schemeName(info.param.scheme)) + "_kind" +
               std::to_string(info.param.kind);
    });

} // namespace fuzz
