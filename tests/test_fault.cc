/**
 * @file
 * Fault-injection and resilience tests.
 *
 * Three layers are covered: the deterministic FaultModel itself
 * (same seed + spec => bit-identical fault schedule at any thread
 * or shard count), the CRC substrate (an exhaustive byte-flip sweep
 * over a serialized index — every flip must be detected or provably
 * harmless), and the end-to-end degrade paths (CRC retries, block
 * drops, dead-shard failover with partial coverage).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/sharded_device.h"
#include "boss/device.h"
#include "common/crc32.h"
#include "common/thread_pool.h"
#include "index/block_decoder.h"
#include "index/serialize.h"
#include "index/text_builder.h"
#include "mem/fault_model.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;

// ---------------------------------------------------------------
// Spec parsing.
// ---------------------------------------------------------------

TEST(FaultSpecTest, ParsesFullSpec)
{
    mem::FaultSpec spec = mem::parseFaultSpec(
        "ber=1e-6,stuck=1e-4,degrade=0.01,degrade-ps=5000000,"
        "retries=5,dead-shard=2,dead-shard=7");
    EXPECT_DOUBLE_EQ(spec.bitErrorRate, 1e-6);
    EXPECT_DOUBLE_EQ(spec.stuckBlockRate, 1e-4);
    EXPECT_DOUBLE_EQ(spec.degradeRate, 0.01);
    EXPECT_EQ(spec.degradeLatency, 5'000'000u);
    EXPECT_EQ(spec.maxRetries, 5u);
    EXPECT_EQ(spec.deadDevices,
              (std::vector<std::uint32_t>{2, 7}));
    EXPECT_TRUE(spec.enabled());
}

TEST(FaultSpecTest, EmptySpecDisablesEverything)
{
    EXPECT_FALSE(mem::FaultSpec{}.enabled());
    EXPECT_FALSE(mem::parseFaultSpec("").enabled());
}

TEST(FaultSpecTest, RejectsMalformedSpecs)
{
    EXPECT_EXIT(mem::parseFaultSpec("frobnicate=1"),
                ::testing::ExitedWithCode(1), "fault spec");
    EXPECT_EXIT(mem::parseFaultSpec("ber=2.0"),
                ::testing::ExitedWithCode(1), "fault spec");
    EXPECT_EXIT(mem::parseFaultSpec("stuck=banana"),
                ::testing::ExitedWithCode(1), "fault spec");
}

// ---------------------------------------------------------------
// FaultModel determinism.
// ---------------------------------------------------------------

TEST(FaultModelTest, ScheduleIsPureFunctionOfSeedAndKey)
{
    mem::FaultSpec spec;
    spec.bitErrorRate = 1e-4;
    spec.stuckBlockRate = 0.01;
    spec.degradeRate = 0.05;

    mem::FaultModel a(spec, 42, 0);
    mem::FaultModel b(spec, 42, 0);

    std::vector<std::uint8_t> bufA(4096), bufB(4096);
    for (std::uint64_t key = 0; key < 500; ++key) {
        EXPECT_EQ(a.blockStuck(key), b.blockStuck(key));
        EXPECT_EQ(a.readDegraded(key << 12),
                  b.readDegraded(key << 12));
        std::fill(bufA.begin(), bufA.end(), 0xAB);
        std::fill(bufB.begin(), bufB.end(), 0xAB);
        std::uint32_t fa = a.corrupt(key, 0, bufA.data(), bufA.size());
        std::uint32_t fb = b.corrupt(key, 0, bufB.data(), bufB.size());
        EXPECT_EQ(fa, fb);
        EXPECT_EQ(bufA, bufB);
    }
}

TEST(FaultModelTest, QueryingOrderDoesNotChangeDecisions)
{
    // Access order must not matter: record decisions in forward key
    // order on one model, reverse order on a twin, and compare.
    mem::FaultSpec spec;
    spec.bitErrorRate = 1e-3;
    spec.stuckBlockRate = 0.02;
    mem::FaultModel fwd(spec, 7, 1);
    mem::FaultModel rev(spec, 7, 1);

    constexpr std::uint64_t kKeys = 300;
    std::vector<bool> stuckFwd(kKeys), stuckRev(kKeys);
    std::vector<std::uint32_t> flipsFwd(kKeys), flipsRev(kKeys);
    std::vector<std::uint8_t> buf(512);
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        stuckFwd[k] = fwd.blockStuck(k);
        flipsFwd[k] = fwd.corrupt(k, 1, nullptr, buf.size());
    }
    for (std::uint64_t k = kKeys; k-- > 0;) {
        stuckRev[k] = rev.blockStuck(k);
        flipsRev[k] = rev.corrupt(k, 1, nullptr, buf.size());
    }
    EXPECT_EQ(stuckFwd, stuckRev);
    EXPECT_EQ(flipsFwd, flipsRev);
}

TEST(FaultModelTest, DevicesHaveIndependentSchedules)
{
    mem::FaultSpec spec;
    spec.stuckBlockRate = 0.5; // coarse enough to differ quickly
    mem::FaultModel dev0(spec, 99, 0);
    mem::FaultModel dev1(spec, 99, 1);
    bool differs = false;
    for (std::uint64_t k = 0; k < 64 && !differs; ++k)
        differs = dev0.blockStuck(k) != dev1.blockStuck(k);
    EXPECT_TRUE(differs);
}

TEST(FaultModelTest, CountingMatchesApplication)
{
    // corrupt(nullptr) must draw the same flips as corrupt(data).
    mem::FaultSpec spec;
    spec.bitErrorRate = 1e-3;
    mem::FaultModel m(spec, 3, 0);
    std::vector<std::uint8_t> data(2048, 0);
    for (std::uint64_t key = 0; key < 100; ++key) {
        std::uint32_t counted =
            m.corrupt(key, 0, nullptr, data.size());
        std::fill(data.begin(), data.end(), 0);
        std::uint32_t applied =
            m.corrupt(key, 0, data.data(), data.size());
        EXPECT_EQ(counted, applied);
        std::uint32_t popcount = 0;
        for (std::uint8_t byte : data)
            popcount += static_cast<std::uint32_t>(
                __builtin_popcount(byte));
        EXPECT_EQ(popcount, applied);
    }
}

TEST(FaultModelTest, AttemptsDrawIndependentFlips)
{
    // A retry is a fresh read: the flips of attempt 0 and attempt 1
    // must differ (else transient faults would never clear).
    mem::FaultSpec spec;
    spec.bitErrorRate = 1e-2;
    mem::FaultModel m(spec, 11, 0);
    bool differs = false;
    std::vector<std::uint8_t> a(1024), b(1024);
    for (std::uint64_t key = 0; key < 32 && !differs; ++key) {
        std::fill(a.begin(), a.end(), 0);
        std::fill(b.begin(), b.end(), 0);
        m.corrupt(key, 0, a.data(), a.size());
        m.corrupt(key, 1, b.data(), b.size());
        differs = a != b;
    }
    EXPECT_TRUE(differs);
}

TEST(FaultModelTest, BitErrorRateIsApproximatelyHonored)
{
    mem::FaultSpec spec;
    spec.bitErrorRate = 1e-3;
    mem::FaultModel m(spec, 5, 0);
    std::uint64_t flips = 0;
    constexpr std::size_t kBytes = 64 * 1024;
    constexpr std::uint64_t kReads = 50;
    for (std::uint64_t key = 0; key < kReads; ++key)
        flips += m.corrupt(key, 0, nullptr, kBytes);
    double expected =
        spec.bitErrorRate * 8.0 * kBytes * kReads; // ~26k flips
    EXPECT_GT(flips, expected * 0.9);
    EXPECT_LT(flips, expected * 1.1);
}

TEST(FaultModelTest, TinyBitErrorRateDoesNotOverflow)
{
    // Gap sampling at ber=1e-12 draws astronomically large gaps;
    // the model must stay well-defined (and almost never flip).
    mem::FaultSpec spec;
    spec.bitErrorRate = 1e-12;
    mem::FaultModel m(spec, 13, 0);
    std::uint64_t flips = 0;
    for (std::uint64_t key = 0; key < 1000; ++key)
        flips += m.corrupt(key, 0, nullptr, 4096);
    EXPECT_LT(flips, 5u);
}

TEST(FaultModelTest, DeadShardListOnlyKillsNamedDevices)
{
    mem::FaultSpec spec;
    spec.deadDevices = {1, 3};
    EXPECT_FALSE(mem::FaultModel(spec, 1, 0).deviceDead());
    EXPECT_TRUE(mem::FaultModel(spec, 1, 1).deviceDead());
    EXPECT_FALSE(mem::FaultModel(spec, 1, 2).deviceDead());
    EXPECT_TRUE(mem::FaultModel(spec, 1, 3).deviceDead());
}

// ---------------------------------------------------------------
// Byte-flip sweep: every corruption detected or provably harmless.
// ---------------------------------------------------------------

index::InvertedIndex
sweepIndex()
{
    workload::CorpusConfig cfg;
    cfg.name = "fault-sweep";
    cfg.numDocs = 400;
    cfg.vocabSize = 60;
    cfg.seed = 1234;
    workload::Corpus corpus(cfg);
    return corpus.buildIndex({0, 1, 2, 5, 9});
}

/** Semantic equality: same search-visible content. */
bool
indexEquals(const index::InvertedIndex &a,
            const index::InvertedIndex &b)
{
    if (a.numDocs() != b.numDocs() || a.numTerms() != b.numTerms() ||
        a.avgDocLen() != b.avgDocLen())
        return false;
    for (DocId d = 0; d < a.numDocs(); ++d) {
        if (a.doc(d).length != b.doc(d).length ||
            a.doc(d).norm != b.doc(d).norm)
            return false;
    }
    for (TermId t = 0; t < a.numTerms(); ++t) {
        if (a.list(t).idf != b.list(t).idf ||
            a.list(t).maxTermScore != b.list(t).maxTermScore)
            return false;
        if (index::decodeAll(a.list(t)) !=
            index::decodeAll(b.list(t)))
            return false;
    }
    return true;
}

TEST(CorruptionSweepTest, EveryByteFlipDetectedOrHarmless)
{
    index::InvertedIndex original = sweepIndex();
    std::stringstream buf;
    index::saveIndex(original, buf);
    const std::string image = buf.str();
    ASSERT_GT(image.size(), 1000u);

    std::size_t detected = 0;
    std::size_t harmless = 0;
    for (std::size_t off = 0; off < image.size(); ++off) {
        std::string damaged = image;
        damaged[off] =
            static_cast<char>(damaged[off] ^ 0x40); // flip one bit
        std::stringstream is(damaged);
        std::string error;
        auto loaded = index::tryLoadIndex(is, &error);
        if (!loaded.has_value()) {
            ++detected;
            continue;
        }
        // A flip the loader accepted must be provably harmless:
        // the loaded index is semantically identical to the
        // original (flips inside ignored padding would land here;
        // the format has none, so acceptance is a hard failure).
        ASSERT_TRUE(indexEquals(original, *loaded))
            << "undetected corruption at byte " << off;
        ++harmless;
    }
    EXPECT_EQ(detected + harmless, image.size());
    // The trailing file CRC nets every single-bit flip: nothing
    // should squeak through as "harmless" in this format.
    EXPECT_EQ(harmless, 0u) << "flips accepted: " << harmless;
}

// ---------------------------------------------------------------
// End-to-end degrade paths.
// ---------------------------------------------------------------

class FaultE2ETest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload::CorpusConfig cfg;
        cfg.name = "fault-e2e";
        cfg.numDocs = 12'000;
        cfg.vocabSize = 300;
        cfg.seed = 321;
        corpus_ = new workload::Corpus(cfg);

        workload::QueryWorkloadConfig qcfg;
        qcfg.vocabSize = cfg.vocabSize;
        qcfg.seed = 9;
        queries_ = new std::vector<workload::Query>(
            workload::sampleQueries(qcfg, 24));
        terms_ = new std::vector<TermId>(
            workload::collectTerms(*queries_));
    }

    static void
    TearDownTestSuite()
    {
        delete corpus_;
        delete queries_;
        delete terms_;
        corpus_ = nullptr;
        queries_ = nullptr;
        terms_ = nullptr;
    }

    void TearDown() override
    {
        common::ThreadPool::setGlobalThreads(1);
    }

    static workload::Corpus *corpus_;
    static std::vector<workload::Query> *queries_;
    static std::vector<TermId> *terms_;
};

workload::Corpus *FaultE2ETest::corpus_ = nullptr;
std::vector<workload::Query> *FaultE2ETest::queries_ = nullptr;
std::vector<TermId> *FaultE2ETest::terms_ = nullptr;

TEST_F(FaultE2ETest, DisabledSpecIsBitIdenticalToNoFaults)
{
    accel::Device plain;
    plain.loadIndex(corpus_->buildIndex(*terms_));
    auto ref = plain.searchBatch(*queries_);

    accel::DeviceConfig cfg;
    cfg.faults = mem::parseFaultSpec(""); // spec present, disabled
    accel::Device dev(cfg);
    dev.loadIndex(corpus_->buildIndex(*terms_));
    auto out = dev.searchBatch(*queries_);

    ASSERT_EQ(out.perQuery.size(), ref.perQuery.size());
    for (std::size_t q = 0; q < ref.perQuery.size(); ++q)
        EXPECT_EQ(out.perQuery[q], ref.perQuery[q]) << "query " << q;
    EXPECT_EQ(out.simSeconds, ref.simSeconds);
    EXPECT_EQ(out.crcRetries, 0u);
    EXPECT_EQ(out.blocksDropped, 0u);
}

TEST_F(FaultE2ETest, TransientFlipsRetryAndComplete)
{
    accel::DeviceConfig cfg;
    cfg.faults = mem::parseFaultSpec("ber=5e-5");
    accel::Device dev(cfg);
    dev.loadIndex(corpus_->buildIndex(*terms_));
    auto out = dev.searchBatch(*queries_);

    ASSERT_EQ(out.perQuery.size(), queries_->size());
    EXPECT_GT(out.crcRetries, 0u);
    ASSERT_NE(dev.faultPolicy(), nullptr);
    EXPECT_GT(dev.faultPolicy()->crcChecks(), 0u);
    EXPECT_EQ(dev.faultPolicy()->crcRetries(), out.crcRetries);
}

TEST_F(FaultE2ETest, StuckBlocksDropButQueriesComplete)
{
    accel::DeviceConfig cfg;
    cfg.faults = mem::parseFaultSpec("stuck=0.05");
    accel::Device dev(cfg);
    dev.loadIndex(corpus_->buildIndex(*terms_));
    auto out = dev.searchBatch(*queries_);

    ASSERT_EQ(out.perQuery.size(), queries_->size());
    EXPECT_GT(out.blocksDropped, 0u);
    EXPECT_EQ(dev.faultPolicy()->blocksDropped(), out.blocksDropped);
    // Stuck media never clears: each drop burned the full retry
    // budget first.
    EXPECT_GE(dev.faultPolicy()->crcRetries(),
              out.blocksDropped * cfg.faults.maxRetries);
}

TEST_F(FaultE2ETest, FaultOutcomesAreThreadCountInvariant)
{
    auto runOnce = [&](std::size_t threads) {
        common::ThreadPool::setGlobalThreads(threads);
        accel::DeviceConfig cfg;
        cfg.faults = mem::parseFaultSpec("ber=2e-5,stuck=0.02");
        cfg.faultSeed = 77;
        accel::Device dev(cfg);
        dev.loadIndex(corpus_->buildIndex(*terms_));
        return dev.searchBatch(*queries_);
    };
    auto a = runOnce(1);
    auto b = runOnce(8);
    ASSERT_EQ(a.perQuery.size(), b.perQuery.size());
    for (std::size_t q = 0; q < a.perQuery.size(); ++q)
        EXPECT_EQ(a.perQuery[q], b.perQuery[q]) << "query " << q;
    EXPECT_EQ(a.crcRetries, b.crcRetries);
    EXPECT_EQ(a.blocksDropped, b.blocksDropped);
    EXPECT_EQ(a.simSeconds, b.simSeconds);
}

TEST_F(FaultE2ETest, DegradedReadsSlowTheDeviceDown)
{
    accel::Device plain;
    plain.loadIndex(corpus_->buildIndex(*terms_));
    auto ref = plain.searchBatch(*queries_);

    accel::DeviceConfig cfg;
    cfg.faults = mem::parseFaultSpec("degrade=0.5");
    accel::Device dev(cfg);
    dev.loadIndex(corpus_->buildIndex(*terms_));
    auto out = dev.searchBatch(*queries_);

    // Same results (degrade is latency-only), slower device.
    ASSERT_EQ(out.perQuery.size(), ref.perQuery.size());
    for (std::size_t q = 0; q < ref.perQuery.size(); ++q)
        EXPECT_EQ(out.perQuery[q], ref.perQuery[q]) << "query " << q;
    EXPECT_GT(out.simSeconds, ref.simSeconds);
}

TEST_F(FaultE2ETest, DeadShardYieldsPartialCoverage)
{
    api::ShardedDeviceConfig cfg;
    cfg.shards = 4;
    cfg.device.faults = mem::parseFaultSpec("dead-shard=2");
    api::ShardedDevice dev(cfg);
    dev.loadShards(corpus_->buildShardedIndex(*terms_, 4));

    auto out = dev.searchBatch(*queries_);
    ASSERT_EQ(out.perQuery.size(), queries_->size());
    EXPECT_EQ(out.deadShards,
              (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(out.shardsDropped, 1u);
    EXPECT_FALSE(dev.shard(2).operational());

    // Partial coverage == exactly the union of the surviving
    // shards: compare against a 3-shard merge of the same
    // partition's live shards.
    auto shards = corpus_->buildShardedIndex(*terms_, 4);
    for (std::size_t q = 0; q < 4; ++q) {
        for (const auto &r : out.perQuery[q]) {
            EXPECT_NE(shards.map.shardOf(r.doc), 2u)
                << "dead shard leaked doc " << r.doc;
        }
    }
}

TEST_F(FaultE2ETest, DeadShardStatsAndSummariesStayCoherent)
{
    api::ShardedDeviceConfig cfg;
    cfg.shards = 4;
    cfg.device.faults = mem::parseFaultSpec("dead-shard=0");
    api::ShardedDevice dev(cfg);
    dev.loadShards(corpus_->buildShardedIndex(*terms_, 4));
    dev.enableQuerySummaries(true);
    dev.searchBatch(*queries_);

    // Aggregation skips the dead shard (which never ran) and stamps
    // the drop count on every record.
    auto agg = dev.aggregatedSummaries();
    ASSERT_EQ(agg.size(), queries_->size());
    std::uint64_t totalScored = 0;
    for (const auto &s : agg) {
        EXPECT_EQ(s.shardsDropped, 1u);
        totalScored += s.docsScored;
    }
    // Individual queries may legitimately score nothing (empty
    // conjunctions), but the surviving shards serve the batch.
    EXPECT_GT(totalScored, 0u);

    std::ostringstream os;
    dev.writeStatsJson(os);
    EXPECT_NE(os.str().find("\"dead_shards\": [0]"),
              std::string::npos)
        << os.str();
}

// ---------------------------------------------------------------
// Lazy CRC under MappedIndex: at-rest corruption is caught on
// first touch and degrades, never crashes.
// ---------------------------------------------------------------

TEST(MappedFaultTest, CorruptedPayloadDegradesOnFirstTouch)
{
    // A small text index with one heavily repeated word, saved to
    // disk and then damaged in that word's doc payload.
    const std::string cleanPath =
        testing::TempDir() + "fault_mapped_clean.idx";
    const std::string badPath =
        testing::TempDir() + "fault_mapped_bad.idx";
    {
        index::TextIndexBuilder builder;
        for (int d = 0; d < 3000; ++d) {
            std::string doc = "storage media block ";
            doc += (d % 2 ? "bandwidth search" : "latency decode");
            doc += d % 3 ? " channel" : " kernel";
            builder.addDocument(doc);
        }
        index::saveTextIndexFile(builder.build(), cleanPath);
    }

    // Locate one byte inside "storage"'s doc payload through the
    // mapping itself: payloads are views, so their file offsets are
    // directly computable.
    std::size_t payloadOffset = 0;
    {
        auto mapped = index::MappedIndex::open(cleanPath);
        auto lexicon = mapped->loadLexicon();
        auto term = lexicon.lookup("storage");
        ASSERT_TRUE(term.has_value());
        const auto &list = mapped->index().list(*term);
        ASSERT_FALSE(list.docPayload.empty());
        payloadOffset = mapped->fileOffset(list.docPayload.data());
    }
    {
        std::filesystem::copy_file(
            cleanPath, badPath,
            std::filesystem::copy_options::overwrite_existing);
        std::fstream f(badPath,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(static_cast<std::streamoff>(payloadOffset));
        char byte = 0;
        f.get(byte);
        f.seekp(static_cast<std::streamoff>(payloadOffset));
        f.put(static_cast<char>(byte ^ 0xFF));
    }

    // The heap loader refuses the file outright (whole-file CRC).
    EXPECT_EXIT(
        {
            accel::Device heap;
            heap.loadTextIndexFile(badPath);
        },
        ::testing::ExitedWithCode(1), "");

    // The mapped loader starts fine -- integrity is lazy -- and the
    // first decode of the damaged block catches it via its per-block
    // CRC, burns the retry budget (the media really is corrupt, so
    // every re-read fails) and drops the block. Queries complete.
    accel::Device dev;
    dev.loadMappedTextIndexFile(badPath);
    EXPECT_TRUE(dev.operational());
    auto out = dev.search("\"storage\" AND \"media\"");
    EXPECT_GT(out.crcRetries, 0u);
    EXPECT_GT(out.blocksDropped, 0u);
    ASSERT_NE(dev.faultPolicy(), nullptr);
    EXPECT_EQ(dev.faultPolicy()->blocksDropped(), out.blocksDropped);

    // An untouched term serves cleanly from the same damaged file.
    auto clean = dev.search("\"bandwidth\"");
    EXPECT_FALSE(clean.topk.empty());
    EXPECT_EQ(clean.blocksDropped, 0u);

    std::filesystem::remove(cleanPath);
    std::filesystem::remove(badPath);
}

TEST_F(FaultE2ETest, AllShardsDeadIsFatal)
{
    api::ShardedDeviceConfig cfg;
    cfg.shards = 2;
    cfg.device.faults =
        mem::parseFaultSpec("dead-shard=0,dead-shard=1");
    api::ShardedDevice dev(cfg);
    dev.loadShards(corpus_->buildShardedIndex(*terms_, 2));
    EXPECT_EXIT(dev.searchBatch(*queries_),
                ::testing::ExitedWithCode(1), "shards dead");
}

} // namespace
