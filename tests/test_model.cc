/**
 * @file
 * Tests for the timing-model layer: trace building, cost models,
 * core replay, and whole-system behavior (scaling, system ordering,
 * traffic shapes the paper's figures depend on).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "model/runner.h"
#include "workload/corpus.h"

namespace
{

using namespace boss;
using namespace boss::model;

struct ModelFixture : ::testing::Test
{
    static workload::Corpus &
    corpus()
    {
        static workload::Corpus c = [] {
            workload::CorpusConfig cfg;
            cfg.numDocs = 40000;
            cfg.vocabSize = 4000;
            cfg.seed = 99;
            return workload::Corpus(cfg);
        }();
        return c;
    }

    static index::InvertedIndex &
    idx()
    {
        static index::InvertedIndex i =
            corpus().buildIndex({0, 1, 2, 10, 100, 1000, 3999});
        return i;
    }

    static index::MemoryLayout &
    layout()
    {
        static index::MemoryLayout l(idx(), 0x10000, 256);
        return l;
    }

    static QueryTrace
    trace(const char *expr, SystemKind kind)
    {
        auto plan = engine::planQuery(
            engine::parseExpression(expr, engine::defaultTermResolver));
        return buildTrace(idx(), layout(), plan,
                          traceOptionsFor(kind, 100));
    }
};

// ---------------------------------------------------------------
// Trace building.
// ---------------------------------------------------------------

TEST_F(ModelFixture, TraceCoversAllBlocksWhenExhaustive)
{
    QueryTrace t = trace("\"t0\"", SystemKind::BossExhaustive);
    EXPECT_EQ(t.blocksLoaded, idx().list(0).numBlocks());
    EXPECT_EQ(t.evaluatedDocs, idx().list(0).docCount);
    EXPECT_EQ(t.skippedDocs, 0u);
    EXPECT_EQ(t.numTerms, 1u);
}

TEST_F(ModelFixture, BossTraceSkipsWork)
{
    QueryTrace et = trace("\"t0\" OR \"t1\"", SystemKind::Boss);
    QueryTrace ex = trace("\"t0\" OR \"t1\"",
                          SystemKind::BossExhaustive);
    EXPECT_LT(et.evaluatedDocs, ex.evaluatedDocs);
    EXPECT_LE(et.blocksLoaded, ex.blocksLoaded);
    EXPECT_GT(et.skippedDocs, 0u);
}

TEST_F(ModelFixture, BlockOnlySkipsLessThanFullEt)
{
    QueryTrace blockOnly =
        trace("\"t0\" OR \"t1\"", SystemKind::BossBlockOnly);
    QueryTrace full = trace("\"t0\" OR \"t1\"", SystemKind::Boss);
    QueryTrace ex =
        trace("\"t0\" OR \"t1\"", SystemKind::BossExhaustive);
    EXPECT_LE(full.evaluatedDocs, blockOnly.evaluatedDocs);
    EXPECT_LE(blockOnly.evaluatedDocs, ex.evaluatedDocs);
}

TEST_F(ModelFixture, IiuStoresAllResults)
{
    QueryTrace iiu = trace("\"t0\" OR \"t1\"", SystemKind::Iiu);
    QueryTrace boss = trace("\"t0\" OR \"t1\"", SystemKind::Boss);
    // IIU writes the whole scored list; BOSS only the top-k.
    EXPECT_GT(iiu.resultStoreBytes, boss.resultStoreBytes);
    EXPECT_EQ(boss.resultStoreBytes, 100u * 8u);
    std::size_t stResult =
        static_cast<std::size_t>(mem::Category::StResult);
    EXPECT_GT(iiu.catAccesses[stResult], 0u);
}

TEST_F(ModelFixture, IiuMultiTermSpillsIntermediates)
{
    QueryTrace iiu = trace("\"t0\" AND \"t1\" AND \"t10\" AND \"t100\"",
                           SystemKind::Iiu);
    QueryTrace boss = trace("\"t0\" AND \"t1\" AND \"t10\" AND \"t100\"",
                            SystemKind::Boss);
    std::size_t st = static_cast<std::size_t>(mem::Category::StInter);
    std::size_t ld = static_cast<std::size_t>(mem::Category::LdInter);
    EXPECT_GT(iiu.catAccesses[st] + iiu.catAccesses[ld], 0u);
    EXPECT_EQ(boss.catAccesses[st] + boss.catAccesses[ld], 0u);
}

TEST_F(ModelFixture, LuceneCachesNorms)
{
    QueryTrace lucene = trace("\"t0\"", SystemKind::Lucene);
    QueryTrace boss = trace("\"t0\"", SystemKind::BossExhaustive);
    std::size_t ldScore =
        static_cast<std::size_t>(mem::Category::LdScore);
    // Both fetch tf payloads, but only the accelerator pays norm
    // traffic on top.
    EXPECT_GT(boss.catAccesses[ldScore], lucene.catAccesses[ldScore]);
}

TEST_F(ModelFixture, TraceRequestsHaveValidAddresses)
{
    QueryTrace t = trace("\"t2\" AND \"t100\"", SystemKind::Boss);
    Addr lo = layout().base();
    Addr hi = layout().end() + (1u << 20); // + scratch region
    std::size_t reqs = 0;
    for (const auto &seg : t.segments) {
        for (const auto &r : seg.reqs) {
            EXPECT_GE(r.addr, lo);
            EXPECT_LT(r.addr, hi);
            EXPECT_GT(r.bytes, 0u);
            ++reqs;
        }
    }
    EXPECT_GT(reqs, 0u);
}

// ---------------------------------------------------------------
// Cost models.
// ---------------------------------------------------------------

TEST(CostModels, BossLimitsIntraQueryParallelism)
{
    BossCostModel boss;
    IiuCostModel iiu;
    SegmentWork w;
    w.decodeVals = 1024;
    // Single-term query: BOSS gets 1 decompression unit, IIU all 4.
    auto b = boss.stageCycles(w, 1, 1);
    auto i = iiu.stageCycles(w, 1, 1);
    std::size_t decomp = static_cast<std::size_t>(Stage::Decomp);
    EXPECT_EQ(b[decomp], 1024u);
    EXPECT_EQ(i[decomp], 256u);
    // Four-term query: equal.
    EXPECT_EQ(boss.stageCycles(w, 4, 1)[decomp], 256u);
}

TEST(CostModels, IiuIgnoresTopkTime)
{
    IiuCostModel iiu;
    SegmentWork w;
    w.topkOps = 500;
    EXPECT_EQ(iiu.stageCycles(w, 2, 1)[static_cast<std::size_t>(
                  Stage::TopK)],
              0u);
    BossCostModel boss;
    EXPECT_EQ(boss.stageCycles(w, 2, 1)[static_cast<std::size_t>(
                  Stage::TopK)],
              500u);
}

TEST(CostModels, CpuSerializesEverything)
{
    CpuCostModel cpu;
    SegmentWork w;
    w.decodeVals = 100;
    w.scoreDocs = 10;
    w.scoreTermOps = 10;
    auto c = cpu.stageCycles(w, 2, 1);
    EXPECT_GT(c[0], 0u);
    for (std::size_t st = 1; st < kNumStages; ++st)
        EXPECT_EQ(c[st], 0u);
    // Per-op software costs dwarf 1-op/cycle hardware.
    EXPECT_GT(c[0], 100u + 10u + 10u);
}

// ---------------------------------------------------------------
// System replay.
// ---------------------------------------------------------------

TEST_F(ModelFixture, ReplayProducesPositiveTime)
{
    auto t = trace("\"t0\"", SystemKind::Boss);
    SystemConfig cfg;
    cfg.kind = SystemKind::Boss;
    cfg.cores = 1;
    auto metrics = replayTraces({t}, cfg);
    EXPECT_GT(metrics.run.seconds, 0.0);
    EXPECT_GT(metrics.run.deviceBytes, 0u);
    EXPECT_GT(metrics.run.qps, 0.0);
}

TEST_F(ModelFixture, MoreCoresMoreThroughput)
{
    // A balanced batch: enough queries that the makespan is not
    // dominated by a single long one.
    std::vector<QueryTrace> traces;
    const char *exprs[] = {"\"t0\"", "\"t1\"", "\"t2\"", "\"t10\"",
                           "\"t100\"", "\"t1000\"", "\"t3999\"",
                           "\"t0\" OR \"t1\""};
    for (int rep = 0; rep < 8; ++rep) {
        for (const char *e : exprs)
            traces.push_back(trace(e, SystemKind::Boss));
    }

    SystemConfig one;
    one.cores = 1;
    SystemConfig four;
    four.cores = 4;
    double qps1 = replayTraces(traces, one).run.qps;
    double qps4 = replayTraces(traces, four).run.qps;
    EXPECT_GT(qps4, qps1 * 1.5);
}

TEST_F(ModelFixture, BossFasterThanLuceneAndIiu)
{
    const char *expr = "\"t0\" OR \"t1\" OR \"t10\" OR \"t100\"";
    auto tBoss = trace(expr, SystemKind::Boss);
    auto tIiu = trace(expr, SystemKind::Iiu);
    auto tLucene = trace(expr, SystemKind::Lucene);

    SystemConfig cfg;
    cfg.cores = 1;
    cfg.kind = SystemKind::Boss;
    double boss = replayTraces({tBoss}, cfg).run.seconds;
    cfg.kind = SystemKind::Iiu;
    double iiuT = replayTraces({tIiu}, cfg).run.seconds;
    cfg.kind = SystemKind::Lucene;
    double lucene = replayTraces({tLucene}, cfg).run.seconds;

    EXPECT_LT(boss, iiuT);
    EXPECT_LT(iiuT, lucene);
}

TEST_F(ModelFixture, DramFasterThanScmForAccelerators)
{
    const char *expr = "\"t0\" AND \"t1\"";
    auto t = trace(expr, SystemKind::Iiu);
    SystemConfig scm;
    scm.kind = SystemKind::Iiu;
    scm.cores = 1;
    SystemConfig dram = scm;
    dram.mem = mem::dramConfig();
    double tScm = replayTraces({t}, scm).run.seconds;
    double tDram = replayTraces({t}, dram).run.seconds;
    EXPECT_LT(tDram, tScm);
}

TEST_F(ModelFixture, LuceneInsensitiveToMemoryDevice)
{
    const char *expr = "\"t0\" OR \"t1\"";
    auto t = trace(expr, SystemKind::Lucene);
    SystemConfig scm;
    scm.kind = SystemKind::Lucene;
    scm.cores = 1;
    SystemConfig dram = scm;
    dram.mem = mem::dramConfig();
    double tScm = replayTraces({t}, scm).run.seconds;
    double tDram = replayTraces({t}, dram).run.seconds;
    // Compute-bound: the paper sees <= ~15% gain from DRAM.
    EXPECT_LT(tDram, tScm);
    EXPECT_GT(tDram, tScm * 0.7);
}

TEST_F(ModelFixture, RunStatsConsistent)
{
    auto t = trace("\"t1\"", SystemKind::Boss);
    SystemConfig cfg;
    cfg.cores = 2;
    auto m = replayTraces({t, t, t}, cfg);
    EXPECT_EQ(m.run.queries, 3u);
    std::uint64_t catTotal = 0;
    for (auto b : m.run.catBytes)
        catTotal += b;
    EXPECT_EQ(catTotal, m.run.deviceBytes);
    EXPECT_NEAR(m.run.deviceBandwidthGBs,
                static_cast<double>(m.run.deviceBytes) /
                    m.run.seconds / 1e9,
                1e-9);
}

} // namespace

// ---------------------------------------------------------------
// Gang execution (>4-term queries span multiple cores) and edge
// cases of the replay machinery.
// ---------------------------------------------------------------

TEST_F(ModelFixture, WideQueryOccupiesGang)
{
    // A 7-term union needs ceil(7/4) = 2 cores; its trace must
    // still complete on a 1-core system (gang clamped) and finish
    // no later with more cores.
    engine::QueryPlan plan;
    for (TermId t : {0u, 1u, 2u, 10u, 100u, 1000u, 3999u}) {
        plan.groups.push_back({t});
        plan.allTerms.push_back(t);
    }
    auto t = buildTrace(idx(), layout(), plan,
                        traceOptionsFor(SystemKind::Boss, 100));
    EXPECT_EQ(t.numTerms, 7u);

    SystemConfig one;
    one.cores = 1;
    SystemConfig four;
    four.cores = 4;
    double tOne = replayTraces({t}, one).run.seconds;
    double tFour = replayTraces({t}, four).run.seconds;
    EXPECT_GT(tOne, 0.0);
    EXPECT_LE(tFour, tOne);
}

TEST_F(ModelFixture, GangDoesNotStarveNarrowQueries)
{
    // Mixed batch of wide and narrow queries all complete.
    engine::QueryPlan wide;
    for (TermId t : {0u, 1u, 2u, 10u, 100u})
        wide.groups.push_back({t});
    wide.allTerms = {0, 1, 2, 10, 100};
    auto wideTrace = buildTrace(idx(), layout(), wide,
                                traceOptionsFor(SystemKind::Boss, 100));
    auto narrow = trace("\"t1\"", SystemKind::Boss);

    SystemConfig cfg;
    cfg.cores = 2;
    auto m = replayTraces({wideTrace, narrow, wideTrace, narrow}, cfg);
    EXPECT_EQ(m.run.queries, 4u);
    EXPECT_GT(m.run.seconds, 0.0);
}

TEST_F(ModelFixture, ReplayIsDeterministic)
{
    auto t = trace("\"t0\" OR \"t1\"", SystemKind::Boss);
    SystemConfig cfg;
    cfg.cores = 4;
    auto a = replayTraces({t, t, t, t}, cfg);
    auto b = replayTraces({t, t, t, t}, cfg);
    EXPECT_EQ(a.run.seconds, b.run.seconds);
    EXPECT_EQ(a.run.deviceBytes, b.run.deviceBytes);
}

TEST_F(ModelFixture, EmptyTraceListCompletes)
{
    SystemConfig cfg;
    auto m = replayTraces({}, cfg);
    EXPECT_EQ(m.run.queries, 0u);
    EXPECT_EQ(m.run.seconds, 0.0);
}

TEST_F(ModelFixture, StatsTreeExposesMemoryCounters)
{
    auto t = trace("\"t0\"", SystemKind::Boss);
    SystemConfig cfg;
    cfg.cores = 1;
    SystemModel model(cfg);
    std::vector<const QueryTrace *> ptrs{&t};
    model.run(ptrs);

    std::ostringstream oss;
    model.statsRoot().dump(oss);
    std::string text = oss.str();
    EXPECT_NE(text.find("sim.mem.reads"), std::string::npos);
    EXPECT_NE(text.find("sim.core0.queries"), std::string::npos);
    EXPECT_NE(text.find("sim.core0.tlb_hits"), std::string::npos);
    EXPECT_EQ(model.statsRoot().counterValue("core0.queries"), 1u);
}

TEST_F(ModelFixture, HugePagesNeverMissDuringQueries)
{
    auto t = trace("\"t0\" OR \"t1\"", SystemKind::Boss);
    SystemConfig cfg;
    cfg.cores = 1;
    SystemModel model(cfg);
    std::vector<const QueryTrace *> ptrs{&t};
    model.run(ptrs);
    // 2 GB pages over a tiny image: at most one page is touched.
    EXPECT_LE(model.statsRoot().counterValue("core0.tlb_misses"), 2u);
    EXPECT_GT(model.statsRoot().counterValue("core0.tlb_hits"), 0u);
}
