/**
 * @file
 * Tests for the programmable decompression datapath: the config
 * parser, the stage-2 interpreter, and agreement between the
 * datapath programs and the native software codecs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "compress/codec.h"
#include "compress/datapath.h"

namespace
{

using namespace boss::compress;
using boss::Rng;

// ---------------------------------------------------------------
// Config parser.
// ---------------------------------------------------------------

TEST(DatapathParser, ParsesBuiltinVb)
{
    DatapathConfig cfg = parseDatapathConfig(builtinConfigText(Scheme::VB));
    EXPECT_EQ(cfg.mode, ExtractMode::ByteWise);
    EXPECT_EQ(cfg.headerBytes, 0u);
    EXPECT_GE(cfg.wires.size(), 5u);
    EXPECT_GE(cfg.regNext, 0);
    EXPECT_GE(cfg.outWire, 0);
    EXPECT_GE(cfg.validWire, 0);
    EXPECT_FALSE(cfg.pfdExceptions);
    EXPECT_TRUE(cfg.useDelta);
}

TEST(DatapathParser, ParsesBuiltinPfd)
{
    DatapathConfig cfg =
        parseDatapathConfig(builtinConfigText(Scheme::OptPFD));
    EXPECT_EQ(cfg.mode, ExtractMode::Fixed);
    EXPECT_EQ(cfg.headerBytes, 2u);
    EXPECT_TRUE(cfg.pfdExceptions);
}

TEST(DatapathParser, CommentsAndBlankLines)
{
    DatapathConfig cfg = parseDatapathConfig(R"(
# a comment
stage1 mode=fixed header=1

stage2 {
  # passthrough
  out = pass(in)
  valid = pass(1)
}
stage4 delta=0
)");
    EXPECT_EQ(cfg.mode, ExtractMode::Fixed);
    EXPECT_FALSE(cfg.useDelta);
}

TEST(DatapathParser, CustomProgramWithWires)
{
    // A made-up scheme: values stored as v*2+1; stage 2 undoes it.
    DatapathConfig cfg = parseDatapathConfig(R"(
stage1 mode=fixed header=1
stage2 {
  dec = sub(in, 1)
  half = shr(dec, 1)
  out = pass(half)
  valid = pass(1)
}
stage3 exceptions=none
stage4 delta=0
)");
    ProgrammableDecompressor dp(cfg);
    // Encode 4 values v*2+1 as 8-bit fixed with a width header byte.
    std::vector<std::uint8_t> bytes = {8, 21, 41, 61, 81};
    std::vector<std::uint32_t> out(4);
    dp.decodeValues(bytes, out);
    EXPECT_EQ(out, (std::vector<std::uint32_t>{10, 20, 30, 40}));
}

// ---------------------------------------------------------------
// Datapath programs agree with native codecs (the key invariant:
// the same hardware primitives reproduce every supported scheme).
// ---------------------------------------------------------------

class DatapathVsNative : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(DatapathVsNative, RandomBlocksAgree)
{
    Scheme s = GetParam();
    const Codec &native = codecFor(s);
    ProgrammableDecompressor dp = ProgrammableDecompressor::forScheme(s);

    Rng rng(123 + static_cast<int>(s));
    for (int trial = 0; trial < 30; ++trial) {
        std::size_t n = 1 + rng.below(128);
        std::vector<std::uint32_t> values(n);
        std::uint32_t maxBits = 1 + rng.below(20);
        for (auto &v : values)
            v = static_cast<std::uint32_t>(rng.next()) &
                boss::maskLow(maxBits);
        BlockEncoding enc;
        ASSERT_TRUE(native.encode(values, enc));

        std::vector<std::uint32_t> nativeOut(n), dpOut(n);
        native.decode(enc.bytes, nativeOut);
        dp.decodeValues(enc.bytes, dpOut);
        EXPECT_EQ(dpOut, nativeOut)
            << schemeName(s) << " trial " << trial;
    }
}

TEST_P(DatapathVsNative, ExceptionHeavyBlocksAgree)
{
    Scheme s = GetParam();
    const Codec &native = codecFor(s);
    ProgrammableDecompressor dp = ProgrammableDecompressor::forScheme(s);

    std::vector<std::uint32_t> values(128, 1);
    for (int i = 0; i < 128; i += 9)
        values[i] = (1u << 22) + static_cast<std::uint32_t>(i);
    BlockEncoding enc;
    ASSERT_TRUE(native.encode(values, enc));

    std::vector<std::uint32_t> nativeOut(128), dpOut(128);
    native.decode(enc.bytes, nativeOut);
    dp.decodeValues(enc.bytes, dpOut);
    EXPECT_EQ(dpOut, nativeOut);
    EXPECT_EQ(dpOut, values);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, DatapathVsNative, ::testing::ValuesIn(kAllSchemes),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        return std::string(schemeName(info.param));
    });

// ---------------------------------------------------------------
// Stage 4 (delta reconstruction).
// ---------------------------------------------------------------

TEST(DatapathDelta, ReconstructsDocIds)
{
    ProgrammableDecompressor dp =
        ProgrammableDecompressor::forScheme(Scheme::VB);
    // Gaps 5, 3, 10 from base 100 -> docIDs 105, 108, 118.
    std::vector<std::uint32_t> gaps = {5, 3, 10};
    BlockEncoding enc;
    ASSERT_TRUE(codecFor(Scheme::VB).encode(gaps, enc));
    std::vector<std::uint32_t> docs(3);
    dp.decodeDocIds(enc.bytes, 100, docs);
    EXPECT_EQ(docs, (std::vector<std::uint32_t>{105, 108, 118}));
}

TEST(DatapathDelta, DisabledDeltaLeavesValues)
{
    DatapathConfig cfg =
        parseDatapathConfig(builtinConfigText(Scheme::VB));
    cfg.useDelta = false;
    ProgrammableDecompressor dp(cfg);
    std::vector<std::uint32_t> gaps = {5, 3, 10};
    BlockEncoding enc;
    ASSERT_TRUE(codecFor(Scheme::VB).encode(gaps, enc));
    std::vector<std::uint32_t> out(3);
    dp.decodeDocIds(enc.bytes, 100, out);
    EXPECT_EQ(out, gaps);
}

// ---------------------------------------------------------------
// Stage-2 interpreter primitives.
// ---------------------------------------------------------------

TEST(DatapathOps, MuxAndEq)
{
    DatapathConfig cfg = parseDatapathConfig(R"(
stage1 mode=bytewise header=0
stage2 {
  is42 = eq(in, 42)
  out = mux(is42, 1000, in)
  valid = pass(1)
}
stage4 delta=0
)");
    ProgrammableDecompressor dp(cfg);
    std::vector<std::uint8_t> bytes = {41, 42, 43};
    std::vector<std::uint32_t> out(3);
    dp.decodeValues(bytes, out);
    EXPECT_EQ(out, (std::vector<std::uint32_t>{41, 1000, 43}));
}

TEST(DatapathOps, BitwiseOps)
{
    DatapathConfig cfg = parseDatapathConfig(R"(
stage1 mode=bytewise header=0
stage2 {
  a = xor(in, 0xff)
  b = or(a, 0x01)
  out = and(b, 0x0f)
  valid = pass(1)
}
stage4 delta=0
)");
    ProgrammableDecompressor dp(cfg);
    std::vector<std::uint8_t> bytes = {0xF0};
    std::vector<std::uint32_t> out(1);
    dp.decodeValues(bytes, out);
    // 0xF0 ^ 0xFF = 0x0F; | 0x01 = 0x0F; & 0x0F = 0x0F.
    EXPECT_EQ(out[0], 0x0Fu);
}

} // namespace
