/**
 * @file
 * Tests for the live telemetry layer: windowed metric primitives
 * (decay, slot reuse, burn-rate math), the registry's two
 * renderers, the flight recorder's bounded forensics, the
 * snapshotter's JSONL emission, the HTTP exporter, and the
 * ServeTelemetry lifecycle reconciliation invariant. All window
 * arithmetic runs on virtual timestamps, so every expectation is
 * deterministic; the concurrency hammers exist for TSan.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "telemetry/flight_recorder.h"
#include "telemetry/http_exporter.h"
#include "telemetry/metrics.h"
#include "telemetry/registry.h"
#include "telemetry/serve_telemetry.h"
#include "telemetry/snapshotter.h"

namespace
{

using namespace boss;
using namespace boss::telemetry;

// ---------------------------------------------------------------
// WindowedHistogram

TEST(WindowedHistogram, SnapshotIsInternallyConsistent)
{
    WindowedHistogram::Config cfg;
    WindowedHistogram h(cfg);
    for (int i = 1; i <= 100; ++i)
        h.sample(0.5e6, static_cast<double>(i) * 100.0);

    auto snap = h.snapshot(0.5e6, 1);
    EXPECT_EQ(snap.count, 100u);
    std::uint64_t inBuckets = 0;
    for (std::uint64_t b : snap.buckets)
        inBuckets += b;
    EXPECT_EQ(inBuckets, snap.count);
    EXPECT_NEAR(snap.mean(), 5050.0, 1e-9);
    // Percentiles are bucket-interpolated, so allow one geometric
    // bucket of slack (~1.33x with the default 56-bucket layout).
    EXPECT_GT(snap.percentile(0.5), 5000.0 / 1.4);
    EXPECT_LT(snap.percentile(0.5), 5000.0 * 1.4);
    EXPECT_GE(snap.percentile(0.99), snap.percentile(0.5));
}

TEST(WindowedHistogram, WindowDecaysAsTimeAdvances)
{
    WindowedHistogram::Config cfg;
    cfg.sliceUs = 1e6;
    WindowedHistogram h(cfg);
    // 100 samples in slice 0.
    for (int i = 0; i < 100; ++i)
        h.sample(0.2e6, 1000.0);

    // The current (partial) slice is always included.
    EXPECT_EQ(h.snapshot(0.2e6, 1).count, 100u);
    // One slice later, a 1-slice window has forgotten them but a
    // 2-slice window still covers slice 0.
    EXPECT_EQ(h.snapshot(1.5e6, 1).count, 0u);
    EXPECT_EQ(h.snapshot(1.5e6, 2).count, 100u);
    // A 3-slice window at slice 2 still reaches back to slice 0...
    EXPECT_EQ(h.snapshot(2.5e6, 3).count, 100u);
    // ...but at slice 3 the samples have aged out entirely.
    EXPECT_EQ(h.snapshot(3.5e6, 3).count, 0u);
}

TEST(WindowedHistogram, RingSlotReuseDropsTheOldSlice)
{
    WindowedHistogram::Config cfg;
    cfg.sliceUs = 1e6;
    cfg.ringSlices = 4;
    WindowedHistogram h(cfg);
    // Slice 0 and slice 4 share ring slot 0; writing slice 4 must
    // reset the slot rather than blend two epochs.
    h.sample(0.5e6, 100.0, 7);
    h.sample(4.5e6, 200.0, 3);

    auto snap = h.snapshot(4.5e6, 4); // slices 1..4
    EXPECT_EQ(snap.count, 3u);
    EXPECT_NEAR(snap.mean(), 200.0, 1e-9);
    // A stale sample aimed at the recycled slice is dropped, not
    // misfiled into the new epoch.
    h.sample(0.5e6, 100.0, 5);
    EXPECT_EQ(h.snapshot(4.5e6, 4).count, 3u);
}

TEST(WindowedHistogram, OutOfRangeSamplesClampToEdgeBuckets)
{
    WindowedHistogram::Config cfg;
    cfg.lo = 10.0;
    cfg.hi = 1000.0;
    cfg.buckets = 8;
    WindowedHistogram h(cfg);
    h.sample(0.0, 1.0);    // below lo -> bucket 0
    h.sample(0.0, 5000.0); // at/above hi -> overflow

    auto snap = h.snapshot(0.0, 1);
    ASSERT_EQ(snap.buckets.size(), 9u);
    EXPECT_EQ(snap.buckets.front(), 1u);
    EXPECT_EQ(snap.buckets.back(), 1u);
    // Quantiles clamp to the layout: the overflow bucket reports hi
    // and q is clamped into [0, 1].
    EXPECT_DOUBLE_EQ(snap.percentile(1.0), 1000.0);
    EXPECT_DOUBLE_EQ(snap.percentile(7.0), 1000.0);
    EXPECT_LE(snap.percentile(-3.0), snap.percentile(0.5));
}

TEST(WindowedHistogram, EmptySnapshotIsZero)
{
    WindowedHistogram h(WindowedHistogram::Config{});
    auto snap = h.snapshot(5e6, 10);
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0.99), 0.0);
}

// ---------------------------------------------------------------
// WindowedCounter / BurnRate

TEST(WindowedCounter, TotalsDecayPerWindow)
{
    WindowedCounter::Config cfg;
    cfg.sliceUs = 1e6;
    WindowedCounter c(cfg);
    c.add(0.5e6, 10); // slice 0
    c.add(1.5e6, 20); // slice 1
    c.add(2.5e6, 30); // slice 2

    EXPECT_EQ(c.total(2.5e6, 1), 30u);
    EXPECT_EQ(c.total(2.5e6, 2), 50u);
    EXPECT_EQ(c.total(2.5e6, 3), 60u);
    // Advancing the clock without new events empties the short
    // window while the long one still sees the tail.
    EXPECT_EQ(c.total(3.5e6, 1), 0u);
    EXPECT_EQ(c.total(3.5e6, 3), 50u);
}

TEST(BurnRate, MatchesTheSreDefinition)
{
    WindowedCounter::Config cfg;
    cfg.sliceUs = 1e6;
    BurnRate burn(0.01, cfg); // 99% objective

    // No events: no burn.
    EXPECT_DOUBLE_EQ(burn.rate(0.0, 1), 0.0);
    // 99 good + 1 bad = exactly the budget -> burn 1.0.
    for (int i = 0; i < 99; ++i)
        burn.record(0.5e6, true);
    burn.record(0.5e6, false);
    EXPECT_DOUBLE_EQ(burn.rate(0.5e6, 1), 1.0);
    // Another bad event in the next slice doubles the error
    // fraction over a 2-slice window: 2/101 / 0.01.
    burn.record(1.5e6, false);
    EXPECT_NEAR(burn.rate(1.5e6, 2), (2.0 / 101.0) / 0.01, 1e-12);
    // All-good traffic burns nothing.
    BurnRate clean(0.01, cfg);
    for (int i = 0; i < 50; ++i)
        clean.record(0.5e6, true);
    EXPECT_DOUBLE_EQ(clean.rate(0.5e6, 1), 0.0);
    EXPECT_EQ(burn.goodTotal(1.5e6, 2), 99u);
    EXPECT_EQ(burn.badTotal(1.5e6, 2), 2u);
}

// ---------------------------------------------------------------
// Registry rendering

TEST(Registry, RendersPrometheusExposition)
{
    Counter offered;
    offered.inc(42);
    Gauge depth;
    depth.set(7.0);
    WindowedHistogram lat{WindowedHistogram::Config{}};
    lat.sample(0.5e6, 1000.0, 10);

    Registry reg;
    reg.setWindows({{"1s", 1}, {"10s", 10}});
    reg.setBuildInfo({{"git", "abc123"}, {"compiler", "gcc 12"}});
    reg.addCounter("boss_serve_offered_total", &offered,
                   "queries offered");
    reg.addCounter("boss_serve_shard_queries_total", &offered,
                   "per-shard queries", {{"shard", "0"}});
    reg.addGauge("boss_serve_queue_depth", &depth, "queue depth");
    reg.addWindowedHistogram("boss_serve_latency_us", &lat,
                             "completion latency");
    reg.addWindowedFormula(
        "boss_serve_offered_qps",
        [](double, std::uint64_t slices) {
            return 100.0 * static_cast<double>(slices);
        },
        "offered rate");

    std::ostringstream os;
    reg.renderPrometheus(os, 0.5e6);
    std::string text = os.str();

    EXPECT_NE(text.find("# TYPE boss_serve_offered_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("boss_serve_offered_total 42"),
              std::string::npos);
    EXPECT_NE(text.find("boss_serve_shard_queries_total"
                        "{shard=\"0\"} 42"),
              std::string::npos);
    EXPECT_NE(text.find("boss_serve_queue_depth 7"),
              std::string::npos);
    EXPECT_NE(
        text.find("boss_build_info{git=\"abc123\",compiler=\"gcc "
                  "12\"} 1"),
        std::string::npos);
    // Windowed metrics render once per window with window labels
    // and quantile breakdowns.
    EXPECT_NE(text.find("window=\"1s\""), std::string::npos);
    EXPECT_NE(text.find("window=\"10s\""), std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
    EXPECT_NE(text.find("boss_serve_latency_us_count"
                        "{window=\"1s\"} 10"),
              std::string::npos);
    // The formula sees each window's width in slices.
    EXPECT_NE(text.find("boss_serve_offered_qps{window=\"10s\"} "
                        "1000"),
              std::string::npos);
}

TEST(Registry, JsonLineCarriesSchemaFields)
{
    Counter done;
    done.inc(5);
    Gauge g;
    g.set(2.5);
    WindowedHistogram lat{WindowedHistogram::Config{}};
    lat.sample(0.5e6, 500.0, 4);

    Registry reg;
    reg.setWindows({{"1s", 1}});
    reg.setBuildInfo({{"git", "abc"}, {"compiler", "g"},
                      {"kernels", "avx2"}});
    reg.addCounter("boss_serve_completed_total", &done, "done");
    reg.addGauge("boss_serve_queue_depth", &g, "depth");
    reg.addWindowedHistogram("boss_serve_latency_us", &lat, "lat");

    std::ostringstream os;
    reg.renderJsonLine(os, 0.5e6);
    std::string line = os.str();

    // One line, balanced braces, no trailing newline.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    long depth2 = 0;
    for (char c : line)
        depth2 += c == '{' ? 1 : c == '}' ? -1 : 0;
    EXPECT_EQ(depth2, 0);
    EXPECT_NE(line.find("\"t_us\": 500000"), std::string::npos);
    EXPECT_NE(line.find("\"build\": {\"git\": \"abc\""),
              std::string::npos);
    EXPECT_NE(line.find("\"boss_serve_completed_total\": 5"),
              std::string::npos);
    EXPECT_NE(line.find("\"boss_serve_queue_depth\": 2.5"),
              std::string::npos);
    EXPECT_NE(line.find("\"windows\": {\"1s\": "),
              std::string::npos);
    EXPECT_NE(line.find("\"count\": 4"), std::string::npos);
    EXPECT_NE(line.find("\"p99\":"), std::string::npos);
}

// A sampler storm against a rendering snapshotter; the assertions
// are on the exact plain counters, the rest is for TSan.
TEST(Registry, ConcurrentSampleAndRenderIsClean)
{
    Counter events;
    Gauge depth;
    WindowedHistogram lat{WindowedHistogram::Config{}};
    WindowedCounter rate{WindowedCounter::Config{}};

    Registry reg;
    reg.setWindows({{"1s", 1}, {"10s", 10}});
    reg.addCounter("events_total", &events, "events");
    reg.addGauge("depth", &depth, "depth");
    reg.addWindowedHistogram("lat_us", &lat, "latency");
    reg.addWindowedFormula(
        "rate",
        [&rate](double tUs, std::uint64_t slices) {
            return static_cast<double>(rate.total(tUs, slices));
        },
        "rate");

    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    std::atomic<bool> stop{false};
    std::thread renderer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::ostringstream os;
            reg.renderPrometheus(os, 3.5e6);
            reg.renderJsonLine(os, 3.5e6);
        }
    });
    std::vector<std::thread> samplers;
    for (int t = 0; t < kThreads; ++t) {
        samplers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // Walk the clock so slices rotate under load.
                double tUs = static_cast<double>(i % 4) * 1e6 +
                             0.5e6;
                events.inc();
                depth.set(static_cast<double>(t));
                lat.sample(tUs, 100.0 + i % 1000);
                rate.add(tUs);
            }
        });
    }
    for (auto &s : samplers)
        s.join();
    stop.store(true, std::memory_order_relaxed);
    renderer.join();

    EXPECT_EQ(events.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    auto snap = lat.snapshot(3.5e6, 10);
    std::uint64_t inBuckets = 0;
    for (std::uint64_t b : snap.buckets)
        inBuckets += b;
    EXPECT_EQ(inBuckets, snap.count);
}

// ---------------------------------------------------------------
// FlightRecorder

QueryLifecycle
doneQuery(std::uint64_t id, double latencyUs)
{
    QueryLifecycle q;
    q.id = id;
    q.queryIndex = id;
    q.outcome = QueryLifecycle::Outcome::Done;
    q.arrivalUs = 1000.0 * static_cast<double>(id);
    q.admitUs = q.arrivalUs + 10.0;
    q.startUs = q.arrivalUs + 20.0;
    q.buildEndUs = q.arrivalUs + latencyUs * 0.5;
    q.finishUs = q.arrivalUs + latencyUs;
    q.metDeadline = true;
    return q;
}

TEST(FlightRecorder, KeepsTheSlowestN)
{
    FlightRecorder rec(4, 4);
    for (std::uint64_t id = 1; id <= 10; ++id)
        rec.record(doneQuery(id, static_cast<double>(id) * 100.0));

    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.slowCount(), 4u);
    EXPECT_DOUBLE_EQ(rec.slowThresholdUs(), 700.0);
    auto entries = rec.entries();
    ASSERT_EQ(entries.size(), 4u);
    // Sorted by descending latency: ids 10, 9, 8, 7.
    EXPECT_EQ(entries[0].id, 10u);
    EXPECT_EQ(entries[1].id, 9u);
    EXPECT_EQ(entries[2].id, 8u);
    EXPECT_EQ(entries[3].id, 7u);
}

TEST(FlightRecorder, ShedRingKeepsMostRecent)
{
    FlightRecorder rec(2, 2);
    for (std::uint64_t id = 0; id < 5; ++id) {
        QueryLifecycle q;
        q.id = id;
        q.outcome = id % 2 == 0 ? QueryLifecycle::Outcome::Shed
                                : QueryLifecycle::Outcome::Expired;
        q.arrivalUs = static_cast<double>(id);
        rec.record(q);
    }
    EXPECT_EQ(rec.shedCount(), 2u);
    auto entries = rec.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].id, 3u);
    EXPECT_EQ(entries[1].id, 4u);
}

TEST(FlightRecorder, ChromeTraceDumpRoundTrips)
{
    FlightRecorder rec(8, 8);
    rec.record(doneQuery(1, 500.0));
    QueryLifecycle shed;
    shed.id = 2;
    shed.outcome = QueryLifecycle::Outcome::Shed;
    shed.arrivalUs = 123.0;
    rec.record(shed);

    std::ostringstream os;
    rec.dumpChromeTrace(os);
    std::string text = os.str();

    // Chrome trace array form with balanced brackets.
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.front(), '[');
    EXPECT_NE(text.find("\"ph\""), std::string::npos);
    long curly = 0, square = 0;
    for (char c : text) {
        curly += c == '{' ? 1 : c == '}' ? -1 : 0;
        square += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(curly, 0);
    EXPECT_EQ(square, 0);
    // The done query renders spans, the shed one an instant.
    EXPECT_NE(text.find("queued"), std::string::npos);
    EXPECT_NE(text.find("serve"), std::string::npos);
    EXPECT_NE(text.find("shed"), std::string::npos);
}

// ---------------------------------------------------------------
// ServeTelemetry lifecycle

TEST(ServeTelemetry, LifecycleReconcilesExactly)
{
    ServeTelemetry::Config cfg;
    cfg.sliceUs = 1e6;
    ServeTelemetry tel(cfg);
    tel.setShardCount(2);
    tel.setBuildInfo({{"git", "abc"}, {"compiler", "g"},
                      {"kernels", "scalar"}});

    // 10 offered: 6 done (1 misses its deadline), 2 shed at
    // admission, 1 rejected after close, 1 expired at dispatch.
    std::uint64_t id = 0;
    auto offerAt = [&](double tUs) {
        tel.onOffered(tUs);
        return id++;
    };
    for (int i = 0; i < 6; ++i) {
        double t0 = 1000.0 * i;
        std::uint64_t qid = offerAt(t0);
        tel.onAdmission(t0, AdmitOutcome::Admitted, i);
        tel.onAdmit(t0 + 50.0, 50.0);
        tel.onBuild(t0 + 150.0, 100.0);
        tel.onFinish(t0 + 400.0, 250.0);
        tel.onShard(0, 1e-4);
        tel.onShard(1, 2e-4);
        QueryLifecycle q;
        q.id = qid;
        q.outcome = QueryLifecycle::Outcome::Done;
        q.arrivalUs = t0;
        q.admitUs = t0 + 50.0;
        q.finishUs = t0 + 400.0;
        q.deadlineUs = t0 + (i == 5 ? 300.0 : 1000.0);
        q.metDeadline = i != 5;
        q.shards = 2;
        tel.onTerminal(t0 + 400.0, q);
    }
    for (int i = 0; i < 2; ++i) {
        double t0 = 7000.0 + 100.0 * i;
        std::uint64_t qid = offerAt(t0);
        tel.onAdmission(t0, AdmitOutcome::ShedCapacity, 99);
        QueryLifecycle q;
        q.id = qid;
        q.outcome = QueryLifecycle::Outcome::Shed;
        q.arrivalUs = t0;
        tel.onTerminal(t0, q);
    }
    {
        double t0 = 8000.0;
        std::uint64_t qid = offerAt(t0);
        tel.onAdmission(t0, AdmitOutcome::Closed, 0);
        QueryLifecycle q;
        q.id = qid;
        q.outcome = QueryLifecycle::Outcome::Shed;
        q.arrivalUs = t0;
        tel.onTerminal(t0, q);
    }
    {
        double t0 = 9000.0;
        std::uint64_t qid = offerAt(t0);
        tel.onAdmission(t0, AdmitOutcome::Admitted, 1);
        QueryLifecycle q;
        q.id = qid;
        q.outcome = QueryLifecycle::Outcome::Expired;
        q.arrivalUs = t0;
        q.deadlineUs = t0 + 10.0;
        tel.onTerminal(t0 + 500.0, q);
    }

    // The acceptance-bar invariant: every offered query reached
    // exactly one terminal counter.
    EXPECT_EQ(tel.offered(), 10u);
    EXPECT_EQ(tel.completed(), 6u);
    EXPECT_EQ(tel.shed(), 3u);
    EXPECT_EQ(tel.expired(), 1u);
    EXPECT_EQ(tel.offered(),
              tel.completed() + tel.shed() + tel.expired());
    EXPECT_EQ(tel.good(), 5u);

    // The registry view agrees with the raw counters and carries
    // the per-shard breakdown.
    std::ostringstream os;
    tel.registry().renderPrometheus(os, 10000.0);
    std::string text = os.str();
    EXPECT_NE(text.find("boss_serve_offered_total 10"),
              std::string::npos);
    EXPECT_NE(text.find("boss_serve_completed_total 6"),
              std::string::npos);
    EXPECT_NE(text.find("boss_serve_deadline_missed_total 1"),
              std::string::npos);
    EXPECT_NE(
        text.find("boss_serve_shard_queries_total{shard=\"1\"} 6"),
        std::string::npos);
    EXPECT_NE(text.find("boss_serve_slo_burn_rate"),
              std::string::npos);
    EXPECT_NE(text.find("boss_build_info{git=\"abc\""),
              std::string::npos);

    // Flight recorder captured both slow completions and sheds.
    EXPECT_EQ(tel.flight().recorded(), 10u);
    EXPECT_EQ(tel.flight().slowCount(), 6u);
    EXPECT_EQ(tel.flight().shedCount(), 4u);
}

TEST(ServeTelemetry, BurnRateReflectsBadTerminals)
{
    ServeTelemetry::Config cfg;
    cfg.errorBudget = 0.01;
    ServeTelemetry tel(cfg);

    // 99 good completions + 1 shed in slice 0: burn is exactly 1.
    for (int i = 0; i < 100; ++i) {
        tel.onOffered(0.5e6);
        QueryLifecycle q;
        q.id = static_cast<std::uint64_t>(i);
        q.arrivalUs = 0.4e6;
        if (i == 0) {
            q.outcome = QueryLifecycle::Outcome::Shed;
        } else {
            q.outcome = QueryLifecycle::Outcome::Done;
            q.finishUs = 0.5e6;
            q.metDeadline = true;
        }
        tel.onTerminal(0.5e6, q);
    }

    std::ostringstream os;
    tel.registry().renderJsonLine(os, 0.5e6);
    std::string line = os.str();
    EXPECT_NE(line.find("\"boss_serve_slo_burn_rate\": 1"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Snapshotter

TEST(Snapshotter, WritesJsonlSnapshots)
{
    Counter c;
    c.inc(3);
    Registry reg;
    reg.setWindows({{"1s", 1}});
    reg.addCounter("events_total", &c, "events");

    std::string path = ::testing::TempDir() + "boss_snap_test.jsonl";
    std::remove(path.c_str());
    {
        Snapshotter::Config cfg;
        cfg.jsonlPath = path;
        cfg.periodMs = 5.0;
        std::atomic<double> now{0.0};
        Snapshotter snap(
            reg,
            [&now] {
                return now.load(std::memory_order_relaxed);
            },
            cfg);
        snap.start();
        for (int i = 0; i < 20; ++i) {
            now.store(static_cast<double>(i) * 1e4,
                      std::memory_order_relaxed);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        snap.stop();
        // stop() always appends a final reconciliation snapshot.
        EXPECT_GE(snap.snapshots(), 1u);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++lines;
        EXPECT_NE(line.find("\"t_us\":"), std::string::npos);
        EXPECT_NE(line.find("\"events_total\": 3"),
                  std::string::npos);
    }
    EXPECT_GE(lines, 1u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// HTTP exporter

#ifndef _WIN32
/** One-shot HTTP/1.0 GET against 127.0.0.1:port. */
std::string
httpGet(std::uint16_t port, const std::string &path)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    std::string req =
        "GET " + path + " HTTP/1.0\r\nConnection: close\r\n\r\n";
    (void)!::write(fd, req.data(), req.size());
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

TEST(HttpExporter, ServesMetricsFlightAndHealth)
{
    ServeTelemetry tel;
    tel.onOffered(100.0);
    QueryLifecycle q = doneQuery(1, 400.0);
    tel.onTerminal(500.0, q);

    HttpExporter::Config cfg;
    cfg.port = 0; // ephemeral
    HttpExporter exporter(tel.registry(), &tel.flight(),
                          [] { return 1000.0; }, cfg);
    std::string error;
    if (!exporter.start(&error))
        GTEST_SKIP() << "cannot bind a listen socket: " << error;
    ASSERT_NE(exporter.port(), 0);

    std::string metrics = httpGet(exporter.port(), "/metrics");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain"), std::string::npos);
    EXPECT_NE(metrics.find("boss_serve_offered_total 1"),
              std::string::npos);

    std::string flight = httpGet(exporter.port(), "/flight");
    EXPECT_NE(flight.find("200 OK"), std::string::npos);
    // Chrome trace array with the done query's serve span.
    EXPECT_NE(flight.find("\"ph\""), std::string::npos);
    EXPECT_NE(flight.find("serve"), std::string::npos);

    std::string health = httpGet(exporter.port(), "/healthz");
    EXPECT_NE(health.find("200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok"), std::string::npos);

    std::string missing = httpGet(exporter.port(), "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos);

    exporter.stop();
    EXPECT_GE(exporter.requestsServed(), 4u);
}
#endif // !_WIN32

// Many threads hammer the full ServeTelemetry hook surface while a
// renderer loops; correctness is checked via the exact terminal
// counters, the interleaving is for TSan.
TEST(ServeTelemetry, ConcurrentHooksReconcile)
{
    ServeTelemetry tel;
    tel.setShardCount(4);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000;
    std::atomic<bool> stop{false};
    std::thread renderer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::ostringstream os;
            tel.registry().renderPrometheus(os, tel.nowUs());
            tel.registry().renderJsonLine(os, tel.nowUs());
        }
    });
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                double tUs =
                    static_cast<double>(i) * 25.0 + t * 7.0;
                tel.onOffered(tUs);
                QueryLifecycle q;
                q.id = static_cast<std::uint64_t>(t) * kPerThread +
                       i;
                q.arrivalUs = tUs;
                if (i % 10 == 0) {
                    tel.onAdmission(tUs,
                                    AdmitOutcome::ShedCapacity, 5);
                    q.outcome = QueryLifecycle::Outcome::Shed;
                } else {
                    tel.onAdmission(tUs, AdmitOutcome::Admitted,
                                    2);
                    tel.onAdmit(tUs + 5.0, 5.0);
                    tel.onBuild(tUs + 50.0, 45.0);
                    tel.onFinish(tUs + 90.0, 40.0);
                    tel.onShard(static_cast<std::size_t>(i % 4),
                                1e-5);
                    q.outcome = QueryLifecycle::Outcome::Done;
                    q.finishUs = tUs + 90.0;
                    q.metDeadline = true;
                }
                tel.onTerminal(tUs + 90.0, q);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    stop.store(true, std::memory_order_relaxed);
    renderer.join();

    const std::uint64_t total =
        static_cast<std::uint64_t>(kThreads) * kPerThread;
    EXPECT_EQ(tel.offered(), total);
    EXPECT_EQ(tel.completed() + tel.shed() + tel.expired(), total);
    EXPECT_EQ(tel.shed(), total / 10);
    EXPECT_EQ(tel.good(), total - total / 10);
}

} // namespace
