/**
 * @file
 * Tests for the text pipeline: tokenizer, lexicon, the
 * document-at-a-time builder, text-index serialization, and
 * lexicon-resolved queries on the Device.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "boss/device.h"
#include "engine/execute.h"
#include "engine/plan.h"
#include "index/block_decoder.h"
#include "index/text_builder.h"

namespace
{

using namespace boss;
using namespace boss::index;

// ---------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------

TEST(Tokenizer, LowercasesAndSplits)
{
    auto tokens = tokenize("Hello, World! HELLO-world 42 ok");
    EXPECT_EQ(tokens, (std::vector<std::string>{
                          "hello", "world", "hello", "world", "42",
                          "ok"}));
}

TEST(Tokenizer, DropsStopwordsAndShortTokens)
{
    auto tokens = tokenize("the cat is on a mat I x");
    // "the", "is", "on", "a" are stopwords/short; "I"/"x" too short.
    EXPECT_EQ(tokens, (std::vector<std::string>{"cat", "mat"}));
}

TEST(Tokenizer, KeepStopwordsWhenDisabled)
{
    TokenizerConfig cfg;
    cfg.dropStopwords = false;
    auto tokens = tokenize("the cat", cfg);
    EXPECT_EQ(tokens, (std::vector<std::string>{"the", "cat"}));
}

TEST(Tokenizer, LengthBounds)
{
    TokenizerConfig cfg;
    cfg.minLength = 3;
    cfg.maxLength = 5;
    auto tokens = tokenize("ab abc abcde abcdef", cfg);
    EXPECT_EQ(tokens, (std::vector<std::string>{"abc", "abcde"}));
}

TEST(Tokenizer, EmptyInput)
{
    EXPECT_TRUE(tokenize("").empty());
    EXPECT_TRUE(tokenize("  ,,, !!").empty());
}

// ---------------------------------------------------------------
// Lexicon.
// ---------------------------------------------------------------

TEST(LexiconTest, AddIsIdempotent)
{
    Lexicon lex;
    TermId a = lex.addTerm("alpha");
    TermId b = lex.addTerm("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(lex.addTerm("alpha"), a);
    EXPECT_EQ(lex.size(), 2u);
    EXPECT_EQ(lex.term(a), "alpha");
    EXPECT_EQ(lex.lookup("beta"), b);
    EXPECT_FALSE(lex.lookup("gamma").has_value());
}

TEST(LexiconTest, SerializationRoundTrip)
{
    Lexicon lex;
    lex.addTerm("storage");
    lex.addTerm("class");
    lex.addTerm("memory");
    std::stringstream buf;
    lex.save(buf);
    Lexicon loaded = Lexicon::load(buf);
    EXPECT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded.lookup("storage"), lex.lookup("storage"));
    EXPECT_EQ(loaded.term(2), "memory");
}

// ---------------------------------------------------------------
// Text index builder.
// ---------------------------------------------------------------

TEST(TextBuilder, CountsTermFrequencies)
{
    TextIndexBuilder builder;
    DocId d0 = builder.addDocument("red fish blue fish");
    DocId d1 = builder.addDocument("red sky");
    EXPECT_EQ(d0, 0u);
    EXPECT_EQ(d1, 1u);
    auto ti = builder.build();

    TermId fish = *ti.lexicon.lookup("fish");
    auto postings = decodeAll(ti.index.list(fish));
    ASSERT_EQ(postings.size(), 1u);
    EXPECT_EQ(postings[0].doc, 0u);
    EXPECT_EQ(postings[0].tf, 2u);

    TermId red = *ti.lexicon.lookup("red");
    postings = decodeAll(ti.index.list(red));
    ASSERT_EQ(postings.size(), 2u);
    EXPECT_EQ(postings[0].tf, 1u);
}

TEST(TextBuilder, DocLengthsTracked)
{
    TextIndexBuilder builder;
    builder.addDocument("one two three four");
    builder.addDocument("solo");
    auto ti = builder.build();
    EXPECT_EQ(ti.index.doc(0).length, 4u);
    EXPECT_EQ(ti.index.doc(1).length, 1u);
}

TEST(TextBuilder, FileRoundTrip)
{
    TextIndexBuilder builder;
    builder.addDocument("persistent memory is byte addressable");
    builder.addDocument("memory pools scale capacity");
    auto ti = builder.build();

    std::string path = testing::TempDir() + "boss_text_index.bin";
    saveTextIndexFile(ti, path);
    auto loaded = loadTextIndexFile(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.index.numDocs(), 2u);
    EXPECT_EQ(loaded.lexicon.size(), ti.lexicon.size());
    TermId memory = *loaded.lexicon.lookup("memory");
    EXPECT_EQ(decodeAll(loaded.index.list(memory)).size(), 2u);
}

// ---------------------------------------------------------------
// Lexicon-resolved queries on the device.
// ---------------------------------------------------------------

TEST(TextSearch, DeviceResolvesWords)
{
    TextIndexBuilder builder;
    builder.addDocument("fast storage class memory device");
    builder.addDocument("slow disk storage");
    builder.addDocument("memory bandwidth matters");
    auto ti = builder.build();

    accel::Device device;
    device.loadTextIndex(std::move(ti));
    ASSERT_TRUE(device.hasLexicon());

    auto outcome = device.search("\"storage\" AND \"memory\"");
    ASSERT_EQ(outcome.topk.size(), 1u);
    EXPECT_EQ(outcome.topk[0].doc, 0u);

    outcome = device.search("\"storage\" OR \"memory\"");
    EXPECT_EQ(outcome.topk.size(), 3u);
}

TEST(TextSearch, MatchesOracleOnTextIndex)
{
    TextIndexBuilder builder;
    const char *docs[] = {
        "green tea and black tea", "black coffee",
        "green smoothie with kale", "tea ceremony in kyoto",
        "coffee and tea tasting",   "kale salad with dressing",
    };
    for (const char *d : docs)
        builder.addDocument(d);
    auto ti = builder.build();

    accel::Device device;
    index::Lexicon lex = ti.lexicon;
    device.loadTextIndex(std::move(ti));

    auto outcome = device.search("\"tea\" OR \"kale\"");
    auto resolver = [&](std::string_view name) {
        return *lex.lookup(name);
    };
    auto plan = engine::planQuery(
        engine::parseExpression("\"tea\" OR \"kale\"", resolver));
    auto oracle = engine::naiveTopK(device.index(), plan, 10);
    ASSERT_EQ(outcome.topk.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(outcome.topk[i].doc, oracle[i].doc);
        EXPECT_FLOAT_EQ(outcome.topk[i].score, oracle[i].score);
    }
}

TEST(TextSearch, UnknownTermIsFatal)
{
    TextIndexBuilder builder;
    builder.addDocument("known words only");
    auto ti = builder.build();
    accel::Device device;
    device.loadTextIndex(std::move(ti));
    EXPECT_EXIT(device.search("\"unknownword\""),
                ::testing::ExitedWithCode(1), "unknown query term");
}

} // namespace
