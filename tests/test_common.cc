/**
 * @file
 * Unit tests for src/common: bit utilities, fixed point, RNG, and
 * the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/bitops.h"
#include "common/fixed_point.h"
#include "common/rng.h"

namespace
{

using boss::BitReader;
using boss::BitWriter;
using boss::Fixed;
using boss::Rng;
using boss::ZipfSampler;

TEST(BitOps, BitsFor)
{
    EXPECT_EQ(boss::bitsFor(0u), 0u);
    EXPECT_EQ(boss::bitsFor(1u), 1u);
    EXPECT_EQ(boss::bitsFor(2u), 2u);
    EXPECT_EQ(boss::bitsFor(3u), 2u);
    EXPECT_EQ(boss::bitsFor(4u), 3u);
    EXPECT_EQ(boss::bitsFor(255u), 8u);
    EXPECT_EQ(boss::bitsFor(256u), 9u);
    EXPECT_EQ(boss::bitsFor(0xFFFFFFFFu), 32u);
}

TEST(BitOps, MaskLow)
{
    EXPECT_EQ(boss::maskLow(0), 0u);
    EXPECT_EQ(boss::maskLow(1), 1u);
    EXPECT_EQ(boss::maskLow(8), 0xFFu);
    EXPECT_EQ(boss::maskLow(32), 0xFFFFFFFFu);
}

TEST(BitOps, CeilDivAndRoundUp)
{
    EXPECT_EQ(boss::ceilDiv(0, 8), 0u);
    EXPECT_EQ(boss::ceilDiv(1, 8), 1u);
    EXPECT_EQ(boss::ceilDiv(8, 8), 1u);
    EXPECT_EQ(boss::ceilDiv(9, 8), 2u);
    EXPECT_EQ(boss::roundUp(0, 64), 0u);
    EXPECT_EQ(boss::roundUp(1, 64), 64u);
    EXPECT_EQ(boss::roundUp(64, 64), 64u);
    EXPECT_EQ(boss::roundUp(65, 64), 128u);
}

TEST(BitStream, RoundTripVariedWidths)
{
    std::vector<std::uint8_t> buf;
    BitWriter writer(buf);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> vals;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::uint32_t width = 1 + rng.below(32);
        std::uint32_t v = static_cast<std::uint32_t>(rng.next()) &
                          boss::maskLow(width);
        vals.emplace_back(v, width);
        writer.put(v, width);
    }
    writer.flush();

    BitReader reader(buf.data(), buf.size());
    for (auto [v, width] : vals)
        EXPECT_EQ(reader.get(width), v);
}

TEST(BitStream, ZeroWidthReadsZero)
{
    std::vector<std::uint8_t> buf;
    BitWriter writer(buf);
    writer.put(0xFFFFFFFFu, 0); // no-op
    writer.put(5, 3);
    writer.flush();
    BitReader reader(buf.data(), buf.size());
    EXPECT_EQ(reader.get(0), 0u);
    EXPECT_EQ(reader.get(3), 5u);
}

TEST(Fixed, BasicArithmetic)
{
    Fixed a = Fixed::fromDouble(1.5);
    Fixed b = Fixed::fromDouble(2.25);
    EXPECT_DOUBLE_EQ((a + b).toDouble(), 3.75);
    EXPECT_DOUBLE_EQ((b - a).toDouble(), 0.75);
    EXPECT_NEAR((a * b).toDouble(), 3.375, 1e-4);
    EXPECT_NEAR((b / a).toDouble(), 1.5, 1e-4);
}

TEST(Fixed, Comparisons)
{
    Fixed a = Fixed::fromDouble(1.0);
    Fixed b = Fixed::fromDouble(2.0);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a == Fixed::fromInt(1));
}

TEST(Fixed, DivisionByZeroSaturates)
{
    Fixed a = Fixed::fromDouble(3.0);
    Fixed z;
    EXPECT_GT((a / z).toDouble(), 1e4);
}

TEST(Fixed, PrecisionBound)
{
    // Q16.16 resolution is 2^-16; conversions stay within one ULP.
    for (double v : {0.001, 0.37, 12.125, 999.75}) {
        Fixed f = Fixed::fromDouble(v);
        EXPECT_NEAR(f.toDouble(), v, 1.0 / 65536.0 + 1e-12);
    }
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(3);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(32.0, 20.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 32.0, 0.5);
    EXPECT_NEAR(std::sqrt(var), 20.0, 0.5);
}

TEST(Rng, GeometricMean)
{
    Rng rng(9);
    double p = 0.25;
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.geometric(p);
    EXPECT_NEAR(sum / n, 1.0 / p, 0.1);
}

TEST(Zipf, RankZeroMostPopular)
{
    ZipfSampler zipf(1000, 1.0);
    Rng rng(11);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler zipf(100, 1.2);
    double total = 0;
    for (std::size_t r = 0; r < 100; ++r)
        total += zipf.pmf(r);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, PmfMatchesEmpirical)
{
    ZipfSampler zipf(50, 1.0);
    Rng rng(13);
    std::vector<int> counts(50, 0);
    const int n = 500000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf(rng)];
    for (std::size_t r : {0u, 1u, 5u, 20u}) {
        double expect = zipf.pmf(r) * n;
        EXPECT_NEAR(counts[r], expect, expect * 0.1 + 50);
    }
}

} // namespace
