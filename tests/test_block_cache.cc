/**
 * @file
 * DRAM block-cache tests: replacement-policy invariants on the
 * cache itself (capacity, pinning, determinism, bypass), cache-on
 * vs cache-off bit-identity end to end, and a TSan hammer driving
 * concurrent readers against eviction pressure (this binary is on
 * the CI TSan list).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "boss/device.h"
#include "mem/block_cache.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;

mem::BlockCacheConfig
config(std::uint64_t capacity, std::uint32_t shards = 1)
{
    mem::BlockCacheConfig cfg;
    cfg.capacityBytes = capacity;
    cfg.shards = shards;
    return cfg;
}

/** One access/unpin round trip (the modeled fetch completing). */
mem::BlockCache::Outcome
touch(mem::BlockCache &cache, Addr addr, std::uint32_t bytes)
{
    auto outcome = cache.access(addr, bytes);
    if (outcome != mem::BlockCache::Outcome::Bypass)
        cache.unpin(addr);
    return outcome;
}

// ---------------------------------------------------------------
// Replacement-policy invariants.
// ---------------------------------------------------------------

TEST(BlockCacheTest, CapacityNeverExceeded)
{
    for (std::uint32_t shards : {1u, 4u}) {
        mem::BlockCache cache(config(64 << 10, shards));
        std::mt19937_64 rng(42);
        std::uniform_int_distribution<Addr> addrDist(0, 4096);
        std::uniform_int_distribution<std::uint32_t> sizeDist(64,
                                                              4096);
        for (int i = 0; i < 20'000; ++i) {
            touch(cache, addrDist(rng) << 8, sizeDist(rng));
            ASSERT_LE(cache.usedBytes(), cache.capacityBytes());
        }
    }
}

TEST(BlockCacheTest, StatsLedgerAlwaysCloses)
{
    mem::BlockCache cache(config(32 << 10));
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<Addr> addrDist(0, 512);
    for (int i = 0; i < 5'000; ++i) {
        touch(cache, addrDist(rng) << 10, 1024);
        auto s = cache.stats();
        ASSERT_EQ(s.hits + s.misses, s.lookups);
        ASSERT_LE(s.bypasses, s.misses);
    }
}

TEST(BlockCacheTest, PinnedBlocksSurviveEvictionPressure)
{
    // Capacity of four 1 KB blocks; keep one pinned while a stream
    // of distinct blocks forces continuous eviction.
    mem::BlockCache cache(config(4 << 10));
    const Addr pinned = 0x1000;
    ASSERT_EQ(cache.access(pinned, 1024),
              mem::BlockCache::Outcome::Inserted);
    for (Addr a = 0; a < 64; ++a)
        touch(cache, 0x100000 + a * 0x1000, 1024);
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_TRUE(cache.contains(pinned));

    // Released, the block is fair game again.
    cache.unpin(pinned);
    for (Addr a = 0; a < 64; ++a)
        touch(cache, 0x900000 + a * 0x1000, 1024);
    EXPECT_FALSE(cache.contains(pinned));
}

TEST(BlockCacheTest, DeterministicUnderSeededTrace)
{
    // Same seeded trace into two single-shard caches: identical
    // stats and identical residency, entry by entry.
    auto runTrace = [](mem::BlockCache &cache) {
        std::mt19937_64 rng(1234);
        std::uniform_int_distribution<Addr> addrDist(0, 256);
        std::uniform_int_distribution<std::uint32_t> sizeDist(
            128, 2048);
        for (int i = 0; i < 10'000; ++i)
            touch(cache, addrDist(rng) << 12, sizeDist(rng));
    };
    mem::BlockCache a(config(16 << 10));
    mem::BlockCache b(config(16 << 10));
    runTrace(a);
    runTrace(b);

    auto sa = a.stats();
    auto sb = b.stats();
    EXPECT_EQ(sa.lookups, sb.lookups);
    EXPECT_EQ(sa.hits, sb.hits);
    EXPECT_EQ(sa.misses, sb.misses);
    EXPECT_EQ(sa.evictions, sb.evictions);
    EXPECT_EQ(sa.bypasses, sb.bypasses);
    EXPECT_EQ(a.usedBytes(), b.usedBytes());
    EXPECT_GT(sa.hits, 0u);
    EXPECT_GT(sa.evictions, 0u);
    for (Addr addr = 0; addr <= 256; ++addr)
        EXPECT_EQ(a.contains(addr << 12), b.contains(addr << 12))
            << "addr " << (addr << 12);
}

TEST(BlockCacheTest, OversizedBlocksBypass)
{
    mem::BlockCache cache(config(8 << 10, 2)); // 4 KB per shard
    EXPECT_EQ(cache.access(0x42, 8 << 10),
              mem::BlockCache::Outcome::Bypass);
    EXPECT_EQ(cache.access(0x42, 0),
              mem::BlockCache::Outcome::Bypass);
    auto s = cache.stats();
    EXPECT_EQ(s.bypasses, 2u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.hits + s.misses, s.lookups);
    EXPECT_EQ(cache.usedBytes(), 0u);
}

TEST(BlockCacheTest, AllPinnedMeansBypassNotEviction)
{
    // Fill the cache with pinned entries, then demand admission of
    // one more: nothing is evictable, so the access must bypass.
    mem::BlockCache cache(config(2 << 10));
    ASSERT_EQ(cache.access(0x1000, 1024),
              mem::BlockCache::Outcome::Inserted);
    ASSERT_EQ(cache.access(0x2000, 1024),
              mem::BlockCache::Outcome::Inserted);
    EXPECT_EQ(cache.access(0x3000, 1024),
              mem::BlockCache::Outcome::Bypass);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_TRUE(cache.contains(0x2000));
    cache.unpin(0x1000);
    cache.unpin(0x2000);
}

TEST(BlockCacheTest, SecondChanceProtectsReReferencedBlocks)
{
    // Four 1 KB slots. The first eviction sweep clears every
    // insertion-time reference bit, so afterwards only a fresh hit
    // re-arms one. Forcing one more eviction must then pass over the
    // re-referenced block (second chance) and take the next clear
    // one instead.
    mem::BlockCache cache(config(4 << 10));
    const Addr A = 0xA000, B = 0xB000, C = 0xC000, D = 0xD000;
    for (Addr a : {A, B, C, D})
        touch(cache, a, 1024);
    touch(cache, 0xE000, 1024); // sweep clears all bits, evicts A
    EXPECT_FALSE(cache.contains(A));
    EXPECT_EQ(touch(cache, B, 1024), mem::BlockCache::Outcome::Hit);
    touch(cache, 0xF000, 1024); // hand passes B (ref set), takes C
    EXPECT_TRUE(cache.contains(B));
    EXPECT_FALSE(cache.contains(C));
    EXPECT_TRUE(cache.contains(D));
}

// ---------------------------------------------------------------
// End to end: the cache changes timing, never results.
// ---------------------------------------------------------------

TEST(BlockCacheE2ETest, CacheOnOffBitIdentity)
{
    workload::CorpusConfig cfg;
    cfg.name = "cache-identity";
    cfg.numDocs = 8'000;
    cfg.vocabSize = 200;
    cfg.seed = 77;
    workload::Corpus corpus(cfg);

    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    qcfg.seed = 5;
    auto queries = workload::sampleQueries(qcfg, 24);
    auto terms = workload::collectTerms(queries);

    accel::Device off;
    off.loadIndex(corpus.buildIndex(terms));
    auto ref = off.searchBatch(queries);

    accel::DeviceConfig dcfg;
    dcfg.cacheMB = 0.125; // small: hits AND misses AND evictions
    dcfg.cacheShards = 1;
    accel::Device on(dcfg);
    on.loadIndex(corpus.buildIndex(terms));
    auto out = on.searchBatch(queries);
    auto out2 = on.searchBatch(queries); // warmer, still identical

    ASSERT_EQ(out.perQuery.size(), ref.perQuery.size());
    for (std::size_t q = 0; q < ref.perQuery.size(); ++q) {
        EXPECT_EQ(out.perQuery[q], ref.perQuery[q]) << "query " << q;
        EXPECT_EQ(out2.perQuery[q], ref.perQuery[q]) << "query " << q;
    }
    EXPECT_EQ(out.evaluatedDocs, ref.evaluatedDocs);
    EXPECT_GT(out.cacheLookups, 0u);
    EXPECT_EQ(out.cacheHits + out.cacheMisses, out.cacheLookups);
    // The cache-off run has no cache counters at all.
    EXPECT_EQ(ref.cacheLookups, 0u);
    EXPECT_EQ(ref.dramBytes, 0u);
    // A warmed cache can only help: pass 2 is at least as fast.
    EXPECT_LE(out2.simSeconds, out.simSeconds);
    EXPECT_GT(out2.cacheHits, 0u);
}

// ---------------------------------------------------------------
// TSan hammer: concurrent readers + eviction pressure.
// ---------------------------------------------------------------

TEST(BlockCacheTSanTest, ConcurrentAccessUnpinAndReaders)
{
    // Severe eviction pressure (working set >> capacity) across all
    // shards, with stats/usedBytes readers racing the mutators.
    // Correctness here is "no data race, no deadlock, ledger
    // closes" -- TSan provides the first two, the final check the
    // third.
    mem::BlockCache cache(config(64 << 10, 8));
    constexpr int kThreads = 8;
    constexpr int kIters = 20'000;

    std::vector<std::thread> workers;
    workers.reserve(kThreads + 1);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&cache, t] {
            std::mt19937_64 rng(1000 + t);
            std::uniform_int_distribution<Addr> addrDist(0, 1024);
            std::uniform_int_distribution<std::uint32_t> sizeDist(
                64, 2048);
            for (int i = 0; i < kIters; ++i)
                touch(cache, addrDist(rng) << 8, sizeDist(rng));
        });
    }
    workers.emplace_back([&cache] {
        for (int i = 0; i < 2'000; ++i) {
            auto s = cache.stats();
            ASSERT_LE(s.hits, s.lookups);
            (void)cache.usedBytes();
            (void)cache.contains(0x100);
            std::this_thread::yield();
        }
    });
    for (auto &w : workers)
        w.join();

    auto s = cache.stats();
    EXPECT_EQ(s.lookups,
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(s.hits + s.misses, s.lookups);
    EXPECT_LE(cache.usedBytes(), cache.capacityBytes());
}

} // namespace
