/**
 * @file
 * Tests for the stream layer (TermStream / AndStream / OrStream),
 * the lazy block-fetch behavior of the cursor, and the stream-tree
 * factoring in buildStreams.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "engine/streams.h"
#include "index/block_decoder.h"
#include "workload/corpus.h"

namespace
{

using namespace boss;
using namespace boss::engine;

index::InvertedIndex &
idx()
{
    static index::InvertedIndex index = [] {
        workload::CorpusConfig cfg;
        cfg.numDocs = 20000;
        cfg.vocabSize = 300;
        cfg.seed = 55;
        workload::Corpus corpus(cfg);
        return corpus.buildIndex({0, 1, 2, 5, 10, 50, 299});
    }();
    return index;
}

std::set<DocId>
docSet(TermId t)
{
    std::set<DocId> out;
    for (const auto &p : index::decodeAll(idx().list(t)))
        out.insert(p.doc);
    return out;
}

std::vector<std::unique_ptr<DocStream>>
termStreams(std::initializer_list<TermId> terms, ExecHooks *hooks)
{
    std::vector<std::unique_ptr<DocStream>> out;
    for (TermId t : terms)
        out.push_back(
            std::make_unique<TermStream>(idx().list(t), hooks));
    return out;
}

/** Drain a stream into a doc set. */
std::set<DocId>
drain(DocStream &s)
{
    std::set<DocId> out;
    while (!s.atEnd()) {
        out.insert(s.doc());
        s.next();
    }
    return out;
}

// ---------------------------------------------------------------
// Lazy fetching.
// ---------------------------------------------------------------

struct LoadCounter : ExecHooks
{
    std::uint64_t docBlocks = 0;
    std::uint64_t tfBlocks = 0;
    void
    onDocBlockLoad(TermId, const index::BlockMeta &) override
    {
        ++docBlocks;
    }
    void
    onTfBlockLoad(TermId, const index::BlockMeta &) override
    {
        ++tfBlocks;
    }
};

TEST(LazyCursor, PositioningFetchesNothing)
{
    LoadCounter hooks;
    ListCursor cur(idx().list(0), &hooks);
    // Construction positions on block 0: metadata only.
    EXPECT_EQ(hooks.docBlocks, 0u);
    // doc() at block start comes from metadata.
    EXPECT_EQ(cur.doc(), idx().list(0).blocks[0].firstDoc);
    EXPECT_EQ(hooks.docBlocks, 0u);
    // next() needs the payload.
    cur.next();
    EXPECT_EQ(hooks.docBlocks, 1u);
}

TEST(LazyCursor, SkipPastBlockAvoidsFetch)
{
    LoadCounter hooks;
    const auto &list = idx().list(0);
    ASSERT_GT(list.numBlocks(), 3u);
    ListCursor cur(list, &hooks);
    cur.skipPastBlock();
    cur.skipPastBlock();
    EXPECT_EQ(hooks.docBlocks, 0u);
    EXPECT_EQ(cur.doc(), list.blocks[2].firstDoc);
}

TEST(LazyCursor, AdvanceToBlockStartStaysLazy)
{
    LoadCounter hooks;
    const auto &list = idx().list(0);
    ASSERT_GT(list.numBlocks(), 2u);
    ListCursor cur(list, &hooks);
    // Target exactly a later block's firstDoc: landing block needs
    // no decode (the cursor can report firstDoc from metadata).
    cur.advanceTo(list.blocks[2].firstDoc);
    EXPECT_EQ(cur.doc(), list.blocks[2].firstDoc);
    EXPECT_EQ(hooks.docBlocks, 0u);
}

TEST(LazyCursor, TfFetchesBothPayloads)
{
    LoadCounter hooks;
    ListCursor cur(idx().list(1), &hooks);
    cur.tf();
    EXPECT_EQ(hooks.docBlocks, 1u);
    EXPECT_EQ(hooks.tfBlocks, 1u);
    // Same block: no refetch.
    cur.tf();
    EXPECT_EQ(hooks.tfBlocks, 1u);
}

TEST(LazyCursor, PeekMaxInRangeIsUpperBound)
{
    ListCursor cur(idx().list(0), nullptr);
    const auto &list = idx().list(0);
    // The peek over the whole list never exceeds the list max and
    // covers the current block's max.
    float peek = cur.peekMaxInRange(0, kInvalidDocId - 1);
    EXPECT_LE(peek, list.maxTermScore);
    EXPECT_GE(peek, list.blocks[0].maxTermScore);
}

// ---------------------------------------------------------------
// Stream semantics.
// ---------------------------------------------------------------

TEST(Streams, AndStreamIsIntersection)
{
    AndStream s(termStreams({0, 10}, nullptr), nullptr);
    std::set<DocId> expect;
    auto a = docSet(0);
    for (DocId d : docSet(10)) {
        if (a.count(d) != 0)
            expect.insert(d);
    }
    EXPECT_EQ(drain(s), expect);
}

TEST(Streams, OrStreamIsUnion)
{
    OrStream s(termStreams({5, 50}, nullptr), nullptr);
    std::set<DocId> expect = docSet(5);
    auto b = docSet(50);
    expect.insert(b.begin(), b.end());
    EXPECT_EQ(drain(s), expect);
}

TEST(Streams, NestedAndOrMatchesSetAlgebra)
{
    // 0 AND (10 OR 50)
    std::vector<std::unique_ptr<DocStream>> members;
    members.push_back(
        std::make_unique<TermStream>(idx().list(0), nullptr));
    members.push_back(std::make_unique<OrStream>(
        termStreams({10, 50}, nullptr), nullptr));
    AndStream s(std::move(members), nullptr);

    auto a = docSet(0);
    auto u = docSet(10);
    auto c = docSet(50);
    u.insert(c.begin(), c.end());
    std::set<DocId> expect;
    for (DocId d : u) {
        if (a.count(d) != 0)
            expect.insert(d);
    }
    EXPECT_EQ(drain(s), expect);
}

TEST(Streams, AdvanceToSkipsToTarget)
{
    OrStream s(termStreams({0, 1}, nullptr), nullptr);
    DocId first = s.doc();
    s.advanceTo(first + 5000);
    EXPECT_GE(s.doc(), first + 5000);
}

TEST(Streams, UpperBoundsAreAdditive)
{
    AndStream andS(termStreams({0, 10}, nullptr), nullptr);
    float expected =
        idx().list(0).maxTermScore + idx().list(10).maxTermScore;
    EXPECT_FLOAT_EQ(andS.upperBound(), expected);

    OrStream orS(termStreams({0, 10}, nullptr), nullptr);
    EXPECT_FLOAT_EQ(orS.upperBound(), expected);
}

TEST(Streams, CollectMatchesReportsTfs)
{
    OrStream s(termStreams({0, 10}, nullptr), nullptr);
    auto a = docSet(0);
    auto b = docSet(10);
    // Walk to a doc in both (if any).
    while (!s.atEnd()) {
        DocId d = s.doc();
        if (a.count(d) != 0 && b.count(d) != 0) {
            std::vector<TermMatch> matches;
            s.collectMatches(matches);
            EXPECT_EQ(matches.size(), 2u);
            std::set<TermId> terms;
            for (const auto &m : matches) {
                terms.insert(m.term);
                EXPECT_GE(m.tf, 1u);
            }
            EXPECT_EQ(terms, (std::set<TermId>{0, 10}));
            return;
        }
        s.next();
    }
    GTEST_SKIP() << "no shared doc between terms 0 and 10";
}

TEST(Streams, SkipPastBlockMakesProgress)
{
    OrStream s(termStreams({0, 1}, nullptr), nullptr);
    DocId before = s.doc();
    DocId end = s.blockEnd();
    s.skipPastBlock();
    if (!s.atEnd()) {
        EXPECT_GT(s.doc(), end);
        EXPECT_GT(s.doc(), before);
    }
}

// ---------------------------------------------------------------
// buildStreams factoring.
// ---------------------------------------------------------------

TEST(BuildStreams, PureUnionYieldsOneStreamPerTerm)
{
    QueryPlan plan;
    plan.groups = {{0}, {10}, {50}};
    plan.allTerms = {0, 10, 50};
    auto streams = buildStreams(idx(), plan, nullptr);
    EXPECT_EQ(streams.size(), 3u);
}

TEST(BuildStreams, PureIntersectionYieldsOneStream)
{
    QueryPlan plan;
    plan.groups = {{0, 10, 50}};
    plan.allTerms = {0, 10, 50};
    auto streams = buildStreams(idx(), plan, nullptr);
    EXPECT_EQ(streams.size(), 1u);
}

TEST(BuildStreams, CommonPrefixFactored)
{
    // (0^10) v (0^50): factors into 0 ^ (10 v 50) -> one stream.
    QueryPlan plan;
    plan.groups = {{0, 10}, {0, 50}};
    plan.allTerms = {0, 10, 50};
    auto streams = buildStreams(idx(), plan, nullptr);
    EXPECT_EQ(streams.size(), 1u);
}

TEST(BuildStreams, UnfactorableDnfKeepsGroups)
{
    // (0^10) v (1^50): no common term -> two AndStreams.
    QueryPlan plan;
    plan.groups = {{0, 10}, {1, 50}};
    plan.allTerms = {0, 1, 10, 50};
    auto streams = buildStreams(idx(), plan, nullptr);
    EXPECT_EQ(streams.size(), 2u);
}

TEST(BuildStreams, FactoredStreamMatchesUnfactoredSemantics)
{
    QueryPlan plan;
    plan.groups = {{2, 5}, {2, 10}};
    plan.allTerms = {2, 5, 10};
    auto factored = buildStreams(idx(), plan, nullptr);
    ASSERT_EQ(factored.size(), 1u);

    auto a = docSet(2);
    auto u = docSet(5);
    auto c = docSet(10);
    u.insert(c.begin(), c.end());
    std::set<DocId> expect;
    for (DocId d : u) {
        if (a.count(d) != 0)
            expect.insert(d);
    }
    EXPECT_EQ(drain(*factored[0]), expect);
}

} // namespace
