/**
 * @file
 * Tests for the observability layer: the deterministic event
 * recorder, the Chrome trace_event exporter, per-query summary
 * records (schema round-trip and bit-identical results across
 * thread-pool sizes), and the device-level stats JSON export.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "boss/device.h"
#include "common/thread_pool.h"
#include "trace/chrome_trace.h"
#include "trace/recorder.h"
#include "trace/summary.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;

// ---------------------------------------------------------------
// Recorder: deterministic merge.
// ---------------------------------------------------------------

TEST(RecorderTest, MergedOrdersByScopeThenSeq)
{
    trace::Recorder rec(2);
    auto lane = rec.addLane("device", "core0", trace::Domain::SimTicks);
    auto base = rec.beginPhase();

    // Worker 1 records its (later-submitted) scope first; the merge
    // must still order by submission index, then by each scope's own
    // recording order.
    auto s1 = rec.scope(1, base + 1);
    s1.instant(lane, "b0", 2.0);
    s1.instant(lane, "b1", 3.0);
    auto s0 = rec.scope(0, base + 0);
    s0.instant(lane, "a0", 0.0);
    s0.instant(lane, "a1", 1.0);

    auto events = rec.merged();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_STREQ(events[0].name, "a0");
    EXPECT_STREQ(events[1].name, "a1");
    EXPECT_STREQ(events[2].name, "b0");
    EXPECT_STREQ(events[3].name, "b1");
    EXPECT_EQ(rec.eventCount(), 4u);
}

TEST(RecorderTest, PhasesOrderConsecutiveSearches)
{
    trace::Recorder rec(1);
    auto lane = rec.addLane("device", "core0", trace::Domain::SimTicks);

    auto base1 = rec.beginPhase();
    rec.scope(0, base1 + 5).instant(lane, "first", 0.0);
    auto base2 = rec.beginPhase();
    EXPECT_GT(base2, base1 + 5);
    rec.serial().instant(lane, "second", 0.0);

    auto events = rec.merged();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_STREQ(events[0].name, "first");
    EXPECT_STREQ(events[1].name, "second");
}

TEST(RecorderTest, NullScopeSwallowsEverything)
{
    trace::Scope scope;
    EXPECT_FALSE(static_cast<bool>(scope));
    scope.span(0, "s", 1.0, 2.0, {{"k", 1}});
    scope.instant(0, "i", 1.0);
    scope.counter(0, "c", 1.0, 2.0);
    EXPECT_EQ(scope.hostMicros(), 0.0);
}

TEST(RecorderTest, ArgsBeyondCapacityAreDropped)
{
    trace::Recorder rec(1);
    auto lane = rec.addLane("p", "t", trace::Domain::HostMicros);
    rec.beginPhase();
    rec.serial().instant(lane, "i", 0.0,
                         {{"a", 1},
                          {"b", 2},
                          {"c", 3},
                          {"d", 4},
                          {"e", 5},
                          {"f", 6},
                          {"overflow", 7}});
    auto events = rec.merged();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].numArgs, 6u);
}

TEST(RecorderTest, EventCapacityBoundsTheBuffer)
{
    trace::Recorder rec(1);
    auto lane = rec.addLane("p", "t", trace::Domain::HostMicros);
    rec.setEventCapacity(4);
    EXPECT_EQ(rec.eventCapacity(), 4u);
    auto base = rec.beginPhase();
    for (std::uint64_t i = 0; i < 10; ++i)
        rec.scope(0, base).instant(lane, "e", static_cast<double>(i),
                                   {{"i", i}});

    // The ring retained the newest 4 and counted the evictions.
    EXPECT_EQ(rec.eventCount(), 4u);
    EXPECT_EQ(rec.droppedEvents(), 6u);
    auto events = rec.merged();
    ASSERT_EQ(events.size(), 4u);
    // Survivors keep their recording order: eviction drops the
    // oldest, never reorders.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].args[0].value, 6u + i);
}

TEST(RecorderTest, UnboundedRecorderNeverDrops)
{
    trace::Recorder rec(1);
    auto lane = rec.addLane("p", "t", trace::Domain::HostMicros);
    auto base = rec.beginPhase();
    for (std::uint64_t i = 0; i < 100; ++i)
        rec.scope(0, base).instant(lane, "e",
                                   static_cast<double>(i));
    EXPECT_EQ(rec.eventCount(), 100u);
    EXPECT_EQ(rec.droppedEvents(), 0u);
}

TEST(RecorderTest, CapacityBoundsEachWorkerBufferIndependently)
{
    trace::Recorder rec(2);
    auto lane = rec.addLane("p", "t", trace::Domain::HostMicros);
    rec.setEventCapacity(3);
    auto base = rec.beginPhase();
    // Worker 0 overflows its ring; worker 1 stays under the cap.
    for (std::uint64_t i = 0; i < 5; ++i)
        rec.scope(0, base + 0).instant(lane, "w0",
                                       static_cast<double>(i));
    rec.scope(1, base + 1).instant(lane, "w1", 0.0);

    EXPECT_EQ(rec.eventCount(), 4u);
    EXPECT_EQ(rec.droppedEvents(), 2u);
    auto events = rec.merged();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_STREQ(events[0].name, "w0");
    EXPECT_STREQ(events[3].name, "w1");
}

TEST(RecorderTest, ParallelRecordingIsDeterministic)
{
    common::ThreadPool::setGlobalThreads(4);
    auto run = [] {
        trace::Recorder rec; // sized off the global pool
        auto base = rec.beginPhase();
        common::ThreadPool::global().parallelFor(
            64, [&](std::size_t i, std::size_t worker) {
                auto s = rec.scope(worker, base + i);
                s.instant(rec.workerLane(worker), "item", 0.0,
                          {{"i", i}});
            });
        std::vector<std::uint64_t> order;
        for (const auto &e : rec.merged())
            order.push_back(e.args[0].value);
        return order;
    };
    auto order = run();
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    common::ThreadPool::setGlobalThreads(1);
}

// ---------------------------------------------------------------
// Chrome trace exporter.
// ---------------------------------------------------------------

TEST(ChromeTraceTest, GoldenOutput)
{
    trace::Recorder rec(1);
    auto core = rec.addLane("device", "core0",
                            trace::Domain::SimTicks, 1);
    auto base = rec.beginPhase();
    auto ser = rec.serial();
    // Simulated-tick lane: 2e6 ticks = 2 µs in Chrome time.
    ser.span(core, "query", 2e6, 1.5e6, {{"q", 7}});
    ser.counter(core, "pending", 2e6, 3.0);
    auto w = rec.scope(0, base + 1);
    w.instant(rec.workerLane(0), "skip_blocks", 4.5,
              {{"term", 1}, {"count", 2}});

    std::ostringstream oss;
    trace::writeChromeTrace(oss, rec);
    const std::string expected =
        "[\n"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"device\"}},\n"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"host\"}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"pool.worker0\"}},\n"
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":1,\"args\":{\"sort_index\":0}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":2,"
        "\"args\":{\"name\":\"core0\"}},\n"
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":2,"
        "\"tid\":2,\"args\":{\"sort_index\":1}},\n"
        "{\"name\":\"query\",\"pid\":2,\"tid\":2,\"ts\":2.000,"
        "\"dur\":1.500,\"ph\":\"X\",\"args\":{\"q\":7}},\n"
        "{\"name\":\"pending\",\"pid\":2,\"tid\":2,\"ts\":2.000,"
        "\"ph\":\"C\",\"args\":{\"value\":3.000}},\n"
        "{\"name\":\"skip_blocks\",\"pid\":1,\"tid\":1,\"ts\":4.500,"
        "\"ph\":\"i\",\"s\":\"t\",\"args\":{\"term\":1,\"count\":2}}"
        "\n]\n";
    EXPECT_EQ(oss.str(), expected);
}

// ---------------------------------------------------------------
// Per-query summary records.
// ---------------------------------------------------------------

trace::QuerySummary
sampleSummary()
{
    trace::QuerySummary s;
    s.query = 3;
    s.terms = 4;
    s.cycles = 123456789;
    s.blocksLoaded = 10;
    s.blocksSkipped = 90;
    s.valuesDecoded = 1280;
    s.normsFetched = 640;
    s.docsScored = 600;
    s.docsSkipped = 5400;
    s.topkInserts = 17;
    s.resultBytes = 160;
    for (std::size_t c = 0; c < trace::kNumTrafficClasses; ++c) {
        s.classBytes[c] = 1000 + c;
        s.classAccesses[c] = 2000 + c;
    }
    return s;
}

TEST(SummaryTest, JsonLineRoundTrip)
{
    auto s = sampleSummary();
    std::ostringstream oss;
    trace::writeJsonLine(oss, s);
    std::string line = oss.str();
    EXPECT_EQ(line.find('\n'), std::string::npos);

    trace::QuerySummary parsed;
    ASSERT_TRUE(trace::parseJsonLine(line, parsed));
    EXPECT_EQ(parsed, s);
}

TEST(SummaryTest, ParserRejectsSchemaMismatches)
{
    auto s = sampleSummary();
    std::ostringstream oss;
    trace::writeJsonLine(oss, s);
    std::string good = oss.str();

    trace::QuerySummary out;
    EXPECT_FALSE(trace::parseJsonLine("", out));
    EXPECT_FALSE(trace::parseJsonLine("not json", out));
    EXPECT_FALSE(trace::parseJsonLine("{}", out));
    EXPECT_FALSE(trace::parseJsonLine("{\"query\":1}", out));
    EXPECT_FALSE(trace::parseJsonLine(good + "x", out));

    // Unknown key: rename "terms" to "trems".
    std::string unknown = good;
    auto pos = unknown.find("\"terms\"");
    ASSERT_NE(pos, std::string::npos);
    unknown.replace(pos, 7, "\"trems\"");
    EXPECT_FALSE(trace::parseJsonLine(unknown, out));
}

TEST(SummaryTest, WriteSummariesEmitsOneLinePerRecord)
{
    std::vector<trace::QuerySummary> batch{sampleSummary(),
                                           sampleSummary()};
    batch[1].query = 4;
    std::ostringstream oss;
    trace::writeSummaries(oss, batch);
    std::istringstream iss(oss.str());
    std::string line;
    std::size_t n = 0;
    while (std::getline(iss, line)) {
        trace::QuerySummary parsed;
        ASSERT_TRUE(trace::parseJsonLine(line, parsed));
        EXPECT_EQ(parsed, batch[n]);
        ++n;
    }
    EXPECT_EQ(n, batch.size());
}

// ---------------------------------------------------------------
// Device-level observability.
// ---------------------------------------------------------------

struct DeviceTraceFixture : ::testing::Test
{
    static std::vector<workload::Query> &
    queries()
    {
        static std::vector<workload::Query> qs = [] {
            workload::QueryWorkloadConfig cfg;
            cfg.vocabSize = 300;
            cfg.queriesPerBucket = 3;
            cfg.seed = 11;
            return workload::makeWorkload(cfg);
        }();
        return qs;
    }

    static accel::Device &
    device()
    {
        // Leaked on purpose: Device is neither copyable nor movable.
        static accel::Device *dev = [] {
            workload::CorpusConfig cfg;
            cfg.numDocs = 10000;
            cfg.vocabSize = 300;
            cfg.seed = 31;
            workload::Corpus corpus(cfg);
            auto *d = new accel::Device;
            d->loadIndex(corpus.buildIndex(
                workload::collectTerms(queries())));
            return d;
        }();
        return *dev;
    }

    void TearDown() override
    {
        device().setRecorder(nullptr);
        device().enableQuerySummaries(false);
        device().enableStatsCapture(false);
        common::ThreadPool::setGlobalThreads(1);
    }
};

TEST_F(DeviceTraceFixture, SummariesBitIdenticalAcrossThreadCounts)
{
    device().enableQuerySummaries(true);

    common::ThreadPool::setGlobalThreads(1);
    device().searchBatch(queries());
    auto reference = device().querySummaries();
    ASSERT_EQ(reference.size(), queries().size());

    for (std::size_t threads : {4u, 8u}) {
        common::ThreadPool::setGlobalThreads(threads);
        device().searchBatch(queries());
        EXPECT_EQ(device().querySummaries(), reference)
            << "summaries diverged at " << threads << " threads";
    }
}

TEST_F(DeviceTraceFixture, SummariesCarryRealWork)
{
    device().enableQuerySummaries(true);
    device().searchBatch(queries());
    const auto &sums = device().querySummaries();
    ASSERT_EQ(sums.size(), queries().size());
    std::uint64_t scored = 0, bytes = 0;
    for (std::size_t i = 0; i < sums.size(); ++i) {
        EXPECT_EQ(sums[i].query, i);
        EXPECT_GT(sums[i].terms, 0u);
        EXPECT_GT(sums[i].cycles, 0u);
        scored += sums[i].docsScored;
        for (std::uint64_t b : sums[i].classBytes)
            bytes += b;
    }
    // Not every query type scores (pure intersections don't), but
    // the batch as a whole must.
    EXPECT_GT(scored, 0u);
    EXPECT_GT(bytes, 0u);
}

TEST_F(DeviceTraceFixture, ChromeTraceCoversAllLaneFamilies)
{
    common::ThreadPool::setGlobalThreads(2);
    trace::Recorder rec;
    device().setRecorder(&rec);
    std::vector<workload::Query> sub(queries().begin(),
                                     queries().begin() + 4);
    device().searchBatch(sub);
    device().setRecorder(nullptr);
    EXPECT_GT(rec.eventCount(), 0u);

    std::ostringstream oss;
    trace::writeChromeTrace(oss, rec);
    std::string json = oss.str();

    // The hard floor is three distinct lanes; the device registers
    // core, memory-channel, event-queue and pool-worker families.
    for (const char *lane :
         {"core0", "mem.ch0", "sim.events", "pool.worker0"})
        EXPECT_NE(json.find(lane), std::string::npos)
            << "missing lane " << lane;
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST_F(DeviceTraceFixture, StatsJsonExportsPoolAndLastRun)
{
    std::ostringstream before;
    device().writeStatsJson(before);
    EXPECT_NE(before.str().find("\"host_pool\""), std::string::npos);
    EXPECT_NE(before.str().find("\"last_run\":\nnull"),
              std::string::npos);

    device().enableStatsCapture(true);
    device().search(queries().front());
    std::ostringstream after;
    device().writeStatsJson(after);
    std::string json = after.str();
    EXPECT_EQ(json.find("\"last_run\":\nnull"), std::string::npos);
    EXPECT_NE(json.find("\"host_pool\""), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"histogram\""),
              std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.size() - 2], '}');
}

} // namespace
