/**
 * @file
 * Tests for the query engine: cursors, top-k, the expression
 * parser/planner, and the central lossless-early-termination
 * property -- every flag combination returns the same top-k as the
 * brute-force oracle.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "engine/cursor.h"
#include "engine/execute.h"
#include "engine/plan.h"
#include "engine/streams.h"
#include "engine/topk.h"
#include "index/block_decoder.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;
using namespace boss::engine;

workload::Corpus &
testCorpus()
{
    static workload::Corpus corpus = [] {
        workload::CorpusConfig cfg;
        cfg.numDocs = 30000;
        cfg.vocabSize = 2000;
        cfg.maxDfFraction = 0.15;
        cfg.seed = 77;
        return workload::Corpus(cfg);
    }();
    return corpus;
}

index::InvertedIndex &
testIndex()
{
    static index::InvertedIndex index = testCorpus().buildIndex(
        {0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 1999});
    return index;
}

// ---------------------------------------------------------------
// TopK.
// ---------------------------------------------------------------

TEST(TopKTest, KeepsBestK)
{
    TopK topk(3);
    topk.insert(1, 1.0f);
    topk.insert(2, 5.0f);
    topk.insert(3, 3.0f);
    topk.insert(4, 4.0f);
    topk.insert(5, 0.5f);
    auto r = topk.sorted();
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0].doc, 2u);
    EXPECT_EQ(r[1].doc, 4u);
    EXPECT_EQ(r[2].doc, 3u);
}

TEST(TopKTest, ThresholdSemantics)
{
    TopK topk(2);
    EXPECT_TRUE(std::isinf(topk.threshold()));
    EXPECT_LT(topk.threshold(), 0.f);
    topk.insert(1, 2.0f);
    EXPECT_FALSE(topk.full());
    topk.insert(2, 1.0f);
    EXPECT_TRUE(topk.full());
    EXPECT_FLOAT_EQ(topk.threshold(), 1.0f);
    // Equal score, larger doc: rejected.
    EXPECT_FALSE(topk.insert(9, 1.0f));
    // Equal score, smaller doc: accepted (deterministic tie-break).
    EXPECT_TRUE(topk.insert(0, 1.0f));
    auto r = topk.sorted();
    EXPECT_EQ(r[1].doc, 0u);
}

TEST(TopKTest, InsertBelowThresholdRejected)
{
    TopK topk(1);
    topk.insert(1, 5.0f);
    EXPECT_FALSE(topk.insert(2, 4.9f));
    EXPECT_EQ(topk.sorted()[0].doc, 1u);
}

// ---------------------------------------------------------------
// Cursor.
// ---------------------------------------------------------------

TEST(CursorTest, SequentialTraversalMatchesDecodeAll)
{
    const auto &list = testIndex().list(0);
    auto oracle = index::decodeAll(list);
    ListCursor cur(list, nullptr);
    for (const auto &p : oracle) {
        ASSERT_FALSE(cur.atEnd());
        EXPECT_EQ(cur.doc(), p.doc);
        EXPECT_EQ(cur.tf(), p.tf);
        cur.next();
    }
    EXPECT_TRUE(cur.atEnd());
}

TEST(CursorTest, AdvanceToSkipsBlocks)
{
    const auto &list = testIndex().list(0);
    ASSERT_GT(list.numBlocks(), 4u);
    auto oracle = index::decodeAll(list);

    ListCursor cur(list, nullptr);
    DocId target = oracle[oracle.size() - 5].doc;
    cur.advanceTo(target);
    EXPECT_EQ(cur.doc(), target);
    // Far fewer blocks loaded than exist.
    EXPECT_LE(cur.blocksLoaded(), 2u);
}

TEST(CursorTest, AdvanceToAbsentDocLandsAfter)
{
    const auto &list = testIndex().list(2);
    auto oracle = index::decodeAll(list);
    ListCursor cur(list, nullptr);
    // A target just below a real doc.
    DocId real = oracle[oracle.size() / 2].doc;
    cur.advanceTo(real - 0); // exact
    EXPECT_EQ(cur.doc(), real);
    cur.advanceTo(real + 1);
    EXPECT_GT(cur.doc(), real);
}

TEST(CursorTest, AdvancePastEndEnds)
{
    const auto &list = testIndex().list(2);
    ListCursor cur(list, nullptr);
    cur.advanceTo(kInvalidDocId - 1);
    EXPECT_TRUE(cur.atEnd());
}

TEST(CursorTest, HooksObserveLoads)
{
    struct CountingHooks : ExecHooks
    {
        std::uint64_t docBlocks = 0, tfBlocks = 0, metas = 0;
        void
        onDocBlockLoad(TermId, const index::BlockMeta &) override
        {
            ++docBlocks;
        }
        void
        onTfBlockLoad(TermId, const index::BlockMeta &) override
        {
            ++tfBlocks;
        }
        void
        onMetaRead(TermId, std::uint32_t n) override
        {
            metas += n;
        }
    };
    CountingHooks hooks;
    const auto &list = testIndex().list(1);
    ListCursor cur(list, &hooks);
    while (!cur.atEnd())
        cur.next();
    EXPECT_EQ(hooks.docBlocks, list.numBlocks());
    EXPECT_EQ(hooks.tfBlocks, 0u); // tf never touched
    EXPECT_GE(hooks.metas, list.numBlocks());
}

// ---------------------------------------------------------------
// Parser and planner.
// ---------------------------------------------------------------

TEST(PlanTest, ParsesSimpleAnd)
{
    auto e = parseExpression("\"t1\" AND \"t2\"", defaultTermResolver);
    auto plan = planQuery(e);
    ASSERT_EQ(plan.groups.size(), 1u);
    EXPECT_EQ(plan.groups[0], (std::vector<TermId>{1, 2}));
}

TEST(PlanTest, DistributesAndOverOr)
{
    auto e = parseExpression("\"t1\" AND (\"t2\" OR \"t3\")",
                             defaultTermResolver);
    auto plan = planQuery(e);
    ASSERT_EQ(plan.groups.size(), 2u);
    EXPECT_EQ(plan.groups[0], (std::vector<TermId>{1, 2}));
    EXPECT_EQ(plan.groups[1], (std::vector<TermId>{1, 3}));
    EXPECT_EQ(plan.allTerms, (std::vector<TermId>{1, 2, 3}));
}

TEST(PlanTest, PrecedenceAndNesting)
{
    // OR binds looser than AND.
    auto e = parseExpression("\"t1\" OR \"t2\" AND \"t3\"",
                             defaultTermResolver);
    auto plan = planQuery(e);
    ASSERT_EQ(plan.groups.size(), 2u);
    EXPECT_EQ(plan.groups[0], (std::vector<TermId>{1}));
    EXPECT_EQ(plan.groups[1], (std::vector<TermId>{2, 3}));
}

TEST(PlanTest, PureUnionDetection)
{
    auto u = planQuery(parseExpression("\"t1\" OR \"t2\"",
                                       defaultTermResolver));
    EXPECT_TRUE(u.isPureUnion());
    EXPECT_FALSE(u.isPureIntersection());
    auto i = planQuery(parseExpression("\"t1\" AND \"t2\"",
                                       defaultTermResolver));
    EXPECT_FALSE(i.isPureUnion());
    EXPECT_TRUE(i.isPureIntersection());
}

TEST(PlanTest, WorkloadPlansMatchTableII)
{
    using workload::Query;
    using workload::QueryType;
    Query q6{QueryType::Q6, {10, 20, 30, 40}};
    auto plan = planQuery(q6);
    ASSERT_EQ(plan.groups.size(), 3u);
    for (const auto &g : plan.groups) {
        EXPECT_EQ(g.size(), 2u);
        EXPECT_TRUE(std::find(g.begin(), g.end(), 10u) != g.end());
    }
    Query q5{QueryType::Q5, {1, 2, 3, 4}};
    EXPECT_TRUE(planQuery(q5).isPureUnion());
    Query q4{QueryType::Q4, {1, 2, 3, 4}};
    EXPECT_TRUE(planQuery(q4).isPureIntersection());
}

TEST(PlanTest, RejectsMalformed)
{
    EXPECT_EXIT(parseExpression("\"t1\" AND", defaultTermResolver),
                ::testing::ExitedWithCode(1), "expected");
    EXPECT_EXIT(parseExpression("(\"t1\"", defaultTermResolver),
                ::testing::ExitedWithCode(1), "expected");
    EXPECT_EXIT(parseExpression("\"t1\" XOR \"t2\"",
                                defaultTermResolver),
                ::testing::ExitedWithCode(1), "unexpected");
}

// ---------------------------------------------------------------
// The central invariant: every execution mode returns the oracle's
// top-k. Parameterized over query shapes x flag combinations.
// ---------------------------------------------------------------

struct ModeCase
{
    const char *name;
    ExecFlags flags;
};

const ModeCase kModes[] = {
    {"boss", {true, true, false, false}},
    {"boss_block_only", {true, false, false, false}},
    {"boss_wand_only", {false, true, false, false}},
    {"exhaustive", {false, false, false, false}},
    {"iiu", {false, false, true, true}},
};

const char *const kExpressions[] = {
    "\"t0\"",
    "\"t1999\"",
    "\"t0\" AND \"t50\"",
    "\"t500\" AND \"t1000\"",
    "\"t0\" OR \"t100\"",
    "\"t1\" AND \"t2\" AND \"t5\" AND \"t10\"",
    "\"t0\" OR \"t1\" OR \"t200\" OR \"t1999\"",
    "\"t2\" AND (\"t5\" OR \"t20\" OR \"t100\")",
    "\"t100\" AND (\"t0\" OR \"t1\")",
    "(\"t0\" AND \"t1\") OR (\"t2\" AND \"t5\")",
};

class ExecEquivalence
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::size_t>>
{
};

TEST_P(ExecEquivalence, MatchesOracle)
{
    const auto &[expr, k] = GetParam();
    auto &index = testIndex();
    auto plan = planQuery(parseExpression(expr, defaultTermResolver));
    auto oracle = naiveTopK(index, plan, k);

    for (const auto &mode : kModes) {
        auto got = executeQuery(index, plan, k, mode.flags);
        ASSERT_EQ(got.size(), oracle.size())
            << mode.name << " on " << expr;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].doc, oracle[i].doc)
                << mode.name << " rank " << i << " on " << expr;
            EXPECT_FLOAT_EQ(got[i].score, oracle[i].score)
                << mode.name << " rank " << i << " on " << expr;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, ExecEquivalence,
    ::testing::Combine(::testing::ValuesIn(kExpressions),
                       ::testing::Values<std::size_t>(10, 100)),
    [](const auto &info) {
        return "expr" +
               std::to_string(std::get<1>(info.param)) + "_" +
               std::to_string(info.index);
    });

// ---------------------------------------------------------------
// ET actually skips work (not just correct, but effective).
// ---------------------------------------------------------------

struct WorkCounter : ExecHooks
{
    std::uint64_t scored = 0;
    std::uint64_t blocksLoaded = 0;
    void
    onScore(DocId, std::uint32_t) override
    {
        ++scored;
    }
    void
    onDocBlockLoad(TermId, const index::BlockMeta &) override
    {
        ++blocksLoaded;
    }
};

TEST(EarlyTermination, SkipsScoringOnUnions)
{
    auto &index = testIndex();
    auto plan = planQuery(parseExpression(
        "\"t0\" OR \"t1\" OR \"t200\" OR \"t1999\"",
        defaultTermResolver));

    WorkCounter et, ex;
    executeQuery(index, plan, 10, {true, true, false, false}, &et);
    executeQuery(index, plan, 10, {false, false, false, false}, &ex);

    EXPECT_LT(et.scored, ex.scored / 2)
        << "ET should skip most scoring for small k";
    EXPECT_LE(et.blocksLoaded, ex.blocksLoaded);
}

TEST(EarlyTermination, IntersectionSkipsBlocks)
{
    auto &index = testIndex();
    // Rare term AND common term: overlap check should avoid loading
    // most of the common term's blocks.
    auto plan = planQuery(parseExpression("\"t1999\" AND \"t0\"",
                                          defaultTermResolver));
    WorkCounter c;
    executeQuery(index, plan, 10, {true, true, false, false}, &c);
    EXPECT_LT(c.blocksLoaded,
              index.list(0).numBlocks() + index.list(1999).numBlocks());
}

TEST(EarlyTermination, LargerKScoresMore)
{
    auto &index = testIndex();
    auto plan = planQuery(parseExpression("\"t0\" OR \"t100\"",
                                          defaultTermResolver));
    WorkCounter k10, k1000;
    executeQuery(index, plan, 10, {true, true, false, false}, &k10);
    executeQuery(index, plan, 1000, {true, true, false, false},
                 &k1000);
    EXPECT_LT(k10.scored, k1000.scored);
}

} // namespace
