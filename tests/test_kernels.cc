/**
 * @file
 * Kernel-layer unit tests: every SIMD tier available on the host
 * must be bit-identical to the scalar reference for each primitive
 * (bit unpack, prefix sum, VarByte decode, lower bound, BM25
 * scoring), across adversarial sizes, widths and alignments. Also
 * covers the dispatch surface (tier names, overrides, rejection of
 * unsupported tiers) and the aligned-allocator contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/aligned.h"
#include "common/bitops.h"
#include "common/rng.h"
#include "compress/varbyte.h"
#include "index/bm25.h"
#include "kernels/kernels.h"

namespace
{

using namespace boss;
namespace k = boss::kernels;

/** Restore auto tier selection when a test returns. */
struct TierGuard
{
    ~TierGuard() { k::setTier(k::bestSupportedTier()); }
};

// ---------------------------------------------------------------
// Dispatch surface.
// ---------------------------------------------------------------

TEST(KernelDispatchTest, TierNamesRoundTrip)
{
    EXPECT_EQ(k::tierName(k::Tier::Scalar), "scalar");
    EXPECT_EQ(k::tierName(k::Tier::Sse42), "sse42");
    EXPECT_EQ(k::tierName(k::Tier::Avx2), "avx2");
}

TEST(KernelDispatchTest, ScalarAlwaysSupported)
{
    EXPECT_TRUE(k::tierSupported(k::Tier::Scalar));
    auto tiers = k::availableTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), k::Tier::Scalar);
    // The best tier is always one of the available ones.
    EXPECT_NE(std::find(tiers.begin(), tiers.end(),
                        k::bestSupportedTier()),
              tiers.end());
}

TEST(KernelDispatchTest, SetTierByNameAcceptsKnownRejectsUnknown)
{
    TierGuard guard;
    EXPECT_TRUE(k::setTierByName("scalar"));
    EXPECT_EQ(k::activeTier(), k::Tier::Scalar);
    EXPECT_EQ(k::activeTierName(), "scalar");
    EXPECT_TRUE(k::setTierByName("auto"));
    EXPECT_EQ(k::activeTier(), k::bestSupportedTier());
    EXPECT_FALSE(k::setTierByName("avx512"));
    EXPECT_FALSE(k::setTierByName(""));
}

TEST(KernelDispatchTest, OpsFollowActiveTier)
{
    TierGuard guard;
    for (k::Tier t : k::availableTiers()) {
        k::setTier(t);
        EXPECT_EQ(&k::ops(), &k::opsFor(t))
            << "active table mismatch for " << k::tierName(t);
    }
}

// ---------------------------------------------------------------
// Aligned allocator.
// ---------------------------------------------------------------

TEST(AlignedVecTest, DataIsCacheLineAligned)
{
    for (std::size_t n : {1u, 3u, 63u, 64u, 65u, 1000u}) {
        AlignedVec<std::uint8_t> bytes(n);
        AlignedVec<std::uint32_t> words(n);
        EXPECT_TRUE(isKernelAligned(bytes.data())) << "n=" << n;
        EXPECT_TRUE(isKernelAligned(words.data())) << "n=" << n;
    }
}

TEST(AlignedVecTest, BehavesLikeVector)
{
    AlignedVec<std::uint32_t> v;
    for (std::uint32_t i = 0; i < 300; ++i)
        v.push_back(i);
    AlignedVec<std::uint32_t> w = v;
    w.erase(w.begin(), w.begin() + 100);
    EXPECT_EQ(w.size(), 200u);
    EXPECT_EQ(w.front(), 100u);
    EXPECT_TRUE(isKernelAligned(w.data()));
}

// ---------------------------------------------------------------
// Per-primitive tier equivalence.
// ---------------------------------------------------------------

/** Pack @p values LSB-first at @p width (BitWriter layout). */
std::vector<std::uint8_t>
pack(const std::vector<std::uint32_t> &values, std::uint32_t width)
{
    std::vector<std::uint8_t> bytes;
    BitWriter writer(bytes);
    for (auto v : values)
        writer.put(v, width);
    writer.flush();
    return bytes;
}

TEST(KernelEquivalenceTest, UnpackBitsMatchesBitReaderEveryWidth)
{
    const std::size_t sizes[] = {0, 1, 7, 8, 31, 32,
                                 33, 127, 128, 129, 200};
    for (std::uint32_t width = 1; width <= 32; ++width) {
        for (std::size_t n : sizes) {
            Rng rng(splitSeed(0x5EED, width * 1000 + n));
            std::vector<std::uint32_t> values(n);
            std::uint64_t bound = 1ull << width;
            for (auto &v : values)
                v = static_cast<std::uint32_t>(rng.below(bound));
            auto bytes = pack(values, width);

            // Reference: the BitReader loop the codecs used to run.
            std::vector<std::uint32_t> ref(n);
            BitReader reader(bytes.data(), bytes.size());
            for (auto &v : ref)
                v = reader.get(width);
            ASSERT_EQ(ref, values); // layout sanity

            for (k::Tier t : k::availableTiers()) {
                std::vector<std::uint32_t> out(n, 0xDEADBEEF);
                k::opsFor(t).unpackBits(bytes.data(), bytes.size(),
                                        out.data(), n, width);
                EXPECT_EQ(out, ref)
                    << k::tierName(t) << " width " << width
                    << " n " << n;
            }
        }
    }
}

TEST(KernelEquivalenceTest, UnpackBitsTruncatedInputReadsZeros)
{
    // A short payload must decode like BitReader: present bits, then
    // zeros -- and must never read past the span (ASan enforces).
    for (std::uint32_t width : {1u, 3u, 7u, 11u, 16u, 25u, 32u}) {
        Rng rng(splitSeed(0x7A11, width));
        std::vector<std::uint32_t> values(128);
        for (auto &v : values)
            v = static_cast<std::uint32_t>(rng.below(1ull << width));
        auto bytes = pack(values, width);
        for (std::size_t cut :
             {std::size_t{0}, std::size_t{1}, bytes.size() / 2,
              bytes.size() - 1}) {
            std::vector<std::uint32_t> ref(values.size());
            BitReader reader(bytes.data(), cut);
            for (auto &v : ref)
                v = reader.get(width);
            for (k::Tier t : k::availableTiers()) {
                std::vector<std::uint32_t> out(values.size());
                k::opsFor(t).unpackBits(bytes.data(), cut, out.data(),
                                        out.size(), width);
                EXPECT_EQ(out, ref) << k::tierName(t) << " width "
                                    << width << " cut " << cut;
            }
        }
    }
}

TEST(KernelEquivalenceTest, PrefixSumMatchesSerial)
{
    for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 127u, 128u, 130u}) {
        Rng rng(splitSeed(0xACC, n));
        std::vector<std::uint32_t> gaps(n);
        for (auto &g : gaps)
            g = static_cast<std::uint32_t>(rng.below(1u << 20));
        auto base = static_cast<std::uint32_t>(rng.below(1u << 30));

        std::vector<std::uint32_t> ref = gaps;
        std::uint32_t acc = base;
        for (auto &v : ref) {
            acc += v;
            v = acc;
        }
        for (k::Tier t : k::availableTiers()) {
            std::vector<std::uint32_t> out = gaps;
            k::opsFor(t).prefixSum(out.data(), out.size(), base);
            EXPECT_EQ(out, ref) << k::tierName(t) << " n " << n;
        }
    }
}

TEST(KernelEquivalenceTest, DecodeVarByteMatchesScalar)
{
    compress::VarByteCodec vb;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(splitSeed(0xB0B, seed));
        std::size_t n = 1 + rng.below(200);
        std::vector<std::uint32_t> values(n);
        for (auto &v : values) {
            // Mix of 1..5-byte encodings.
            int w = 1 + static_cast<int>(rng.below(32));
            v = static_cast<std::uint32_t>(rng.below(1ull << w));
        }
        compress::BlockEncoding enc;
        ASSERT_TRUE(vb.encode(values, enc));

        for (k::Tier t : k::availableTiers()) {
            std::vector<std::uint32_t> out(n, 0xDEADBEEF);
            std::size_t consumed = k::opsFor(t).decodeVarByte(
                enc.bytes.data(), enc.bytes.size(), out.data(), n);
            EXPECT_EQ(consumed, enc.bytes.size())
                << k::tierName(t) << " seed " << seed;
            EXPECT_EQ(out, values)
                << k::tierName(t) << " seed " << seed;
        }
    }
}

TEST(KernelEquivalenceTest, LowerBoundMatchesStd)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(splitSeed(0x10B0, seed));
        std::size_t n = rng.below(260);
        std::vector<std::uint32_t> data(n);
        for (auto &d : data)
            d = static_cast<std::uint32_t>(
                rng.below(seed % 3 == 0 ? 50 : 0x100000000ull));
        std::sort(data.begin(), data.end());

        for (int probe = 0; probe < 50; ++probe) {
            std::uint32_t key;
            if (probe % 3 == 0 && n > 0) {
                key = data[rng.below(n)]; // exact hit (duplicates!)
            } else {
                key = static_cast<std::uint32_t>(
                    rng.below(0x100000000ull));
            }
            auto ref = static_cast<std::size_t>(
                std::lower_bound(data.begin(), data.end(), key) -
                data.begin());
            for (k::Tier t : k::availableTiers()) {
                EXPECT_EQ(k::opsFor(t).lowerBound(data.data(), n, key),
                          ref)
                    << k::tierName(t) << " seed " << seed << " key "
                    << key;
            }
        }
    }
}

TEST(KernelEquivalenceTest, ScoreBm25BitExactWithBm25TermScore)
{
    index::Bm25 bm25({}, 10000, 250.0);
    const double k1p1 = bm25.params().k1 + 1.0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(splitSeed(0xB25, seed));
        std::size_t n = 1 + rng.below(200);
        double idf = bm25.idf(
            1 + static_cast<std::uint32_t>(rng.below(9999)));
        std::vector<std::uint32_t> tfs(n);
        std::vector<float> norms(n);
        for (std::size_t i = 0; i < n; ++i) {
            tfs[i] =
                static_cast<std::uint32_t>(1 + rng.below(1u << 10));
            norms[i] = bm25.docNorm(
                1 + static_cast<std::uint32_t>(rng.below(2000)));
        }
        std::vector<float> ref(n);
        for (std::size_t i = 0; i < n; ++i)
            ref[i] = bm25.termScore(idf, tfs[i], norms[i]);

        for (k::Tier t : k::availableTiers()) {
            std::vector<float> out(n, -1.f);
            k::opsFor(t).scoreBm25(idf, k1p1, tfs.data(),
                                   norms.data(), n, out.data());
            // Bitwise comparison: == would accept -0.0 vs 0.0 and
            // hide NaN handling differences.
            EXPECT_EQ(std::memcmp(out.data(), ref.data(),
                                  n * sizeof(float)),
                      0)
                << k::tierName(t) << " seed " << seed;
        }
    }
}

} // namespace
