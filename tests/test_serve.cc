/**
 * @file
 * Serving-layer tests: arrival-schedule determinism, admission
 * queue invariants and shed policies, deadline handling, and the
 * core contract — serve-mode top-k is bit-identical to batch-mode
 * top-k for every pipeline mode, thread count and shard count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "api/sharded_device.h"
#include "boss/device.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/admission.h"
#include "serve/arrival.h"
#include "serve/backend.h"
#include "serve/server.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;

// ---------------------------------------------------------------
// Arrival schedules.
// ---------------------------------------------------------------

TEST(ArrivalTest, PoissonScheduleIsDeterministic)
{
    serve::ArrivalConfig cfg;
    cfg.qps = 5000.0;
    cfg.count = 2000;
    cfg.seed = 1234;
    auto a = serve::makeArrivals(cfg);
    auto b = serve::makeArrivals(cfg);
    ASSERT_EQ(a.size(), cfg.count);
    EXPECT_EQ(a, b); // bit-identical, same seed
    cfg.seed = 1235;
    EXPECT_NE(serve::makeArrivals(cfg), a);
}

TEST(ArrivalTest, PoissonMatchesOfferedRate)
{
    serve::ArrivalConfig cfg;
    cfg.qps = 10000.0;
    cfg.count = 20000;
    auto at = serve::makeArrivals(cfg);
    for (std::size_t i = 1; i < at.size(); ++i)
        ASSERT_GE(at[i], at[i - 1]);
    // Mean gap within 5% of 1/qps over 20k draws.
    double meanGap = at.back() / static_cast<double>(at.size());
    EXPECT_NEAR(meanGap, 1e6 / cfg.qps, 0.05 * 1e6 / cfg.qps);
}

TEST(ArrivalTest, BurstyMatchesMeanRateButClumps)
{
    serve::ArrivalConfig cfg;
    cfg.process = serve::ArrivalProcess::Bursty;
    cfg.qps = 10000.0;
    cfg.count = 50000;
    cfg.burst.rateMultiplier = 6.0;
    cfg.burst.hotFraction = 0.1;
    // Short dwells give ~1000 regime cycles over the run, so the
    // time-weighted mean converges; fixed-count sampling of an MMPP
    // otherwise stops mid-burst often enough to bias the rate high.
    cfg.burst.hotDwellUs = 500.0;
    auto at = serve::makeArrivals(cfg);
    for (std::size_t i = 1; i < at.size(); ++i)
        ASSERT_GE(at[i], at[i - 1]);
    double meanGap = at.back() / static_cast<double>(at.size());
    EXPECT_NEAR(meanGap, 1e6 / cfg.qps, 0.10 * 1e6 / cfg.qps);
    // Burstiness: the gap distribution has a higher coefficient of
    // variation than the Poisson baseline (CV 1 for exponential).
    double mean = meanGap, var = 0.0;
    for (std::size_t i = 1; i < at.size(); ++i) {
        double g = at[i] - at[i - 1];
        var += (g - mean) * (g - mean);
    }
    var /= static_cast<double>(at.size() - 1);
    double cv = std::sqrt(var) / mean;
    EXPECT_GT(cv, 1.15);
    // Same seed, same schedule.
    EXPECT_EQ(serve::makeArrivals(cfg), at);
}

// ---------------------------------------------------------------
// Admission queue.
// ---------------------------------------------------------------

serve::ServeRequest
req(std::uint64_t id, double deadlineUs =
                          std::numeric_limits<double>::infinity())
{
    serve::ServeRequest r;
    r.id = id;
    r.deadlineUs = deadlineUs;
    return r;
}

TEST(AdmissionTest, DropTailBoundsDepthAndKeepsFifoOrder)
{
    serve::AdmissionQueue q(4, serve::ShedPolicy::DropTail);
    for (std::uint64_t i = 0; i < 10; ++i) {
        auto adm = q.offer(req(i));
        EXPECT_LE(q.size(), 4u);
        if (i < 4)
            EXPECT_EQ(adm, serve::Admission::Admitted);
        else
            EXPECT_EQ(adm, serve::Admission::ShedCapacity);
    }
    auto c = q.counters();
    EXPECT_EQ(c.offered, 10u);
    EXPECT_EQ(c.admitted, 4u);
    EXPECT_EQ(c.shedCapacity, 6u);
    EXPECT_EQ(c.peakDepth, 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
        auto r = q.tryPop();
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->id, i); // FIFO
    }
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(AdmissionTest, ShedDecisionsAreDeterministicUnderSeededLoad)
{
    // Two identical seeded offer/pop interleavings must shed the
    // exact same request ids — admission is clock-free, so the
    // decision depends only on the call sequence.
    auto run = [](std::uint64_t seed) {
        Rng rng(seed);
        serve::AdmissionQueue q(8, serve::ShedPolicy::DropTail);
        std::vector<std::uint64_t> admitted, popped;
        for (std::uint64_t i = 0; i < 500; ++i) {
            if (q.offer(req(i)) == serve::Admission::Admitted)
                admitted.push_back(i);
            if (rng.chance(0.4)) {
                auto r = q.tryPop();
                if (r.has_value())
                    popped.push_back(r->id);
            }
        }
        return std::make_pair(admitted, popped);
    };
    EXPECT_EQ(run(99), run(99));
    EXPECT_NE(run(99), run(100));
}

TEST(AdmissionTest, DropDeadlineEvictsLeastSlackFirst)
{
    serve::AdmissionQueue q(2, serve::ShedPolicy::DropDeadline);
    EXPECT_EQ(q.offer(req(0, 100.0)), serve::Admission::Admitted);
    EXPECT_EQ(q.offer(req(1, 500.0)), serve::Admission::Admitted);

    // Newcomer with more slack than the earliest deadline in the
    // queue: evict id 0 and admit.
    std::optional<serve::ServeRequest> evicted;
    EXPECT_EQ(q.offer(req(2, 300.0), &evicted),
              serve::Admission::Admitted);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->id, 0u);

    // Newcomer with the least slack of all: refused, queue intact.
    evicted.reset();
    EXPECT_EQ(q.offer(req(3, 200.0), &evicted),
              serve::Admission::ShedDeadline);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(q.size(), 2u);

    // FIFO among survivors (1 admitted before 2).
    EXPECT_EQ(q.tryPop()->id, 1u);
    EXPECT_EQ(q.tryPop()->id, 2u);
    auto c = q.counters();
    EXPECT_EQ(c.shedDeadline, 2u); // one eviction + one refusal
}

TEST(AdmissionTest, BlockPolicyWaitsForSpaceAndCloseWakesWaiters)
{
    serve::AdmissionQueue q(1, serve::ShedPolicy::Block);
    EXPECT_EQ(q.offer(req(0)), serve::Admission::Admitted);

    std::atomic<int> state{0};
    std::thread offerer([&] {
        state = 1;
        auto adm = q.offer(req(1)); // full: must wait
        EXPECT_EQ(adm, serve::Admission::Admitted);
        state = 2;
        auto refused = q.offer(req(2)); // will block until close()
        EXPECT_EQ(refused, serve::Admission::Closed);
        state = 3;
    });
    while (state.load() < 1)
        std::this_thread::yield();
    // The blocked offer completes once the consumer makes room.
    EXPECT_EQ(q.pop()->id, 0u);
    while (state.load() < 2)
        std::this_thread::yield();
    q.close();
    offerer.join();
    EXPECT_EQ(state.load(), 3);
    // close() drains what was admitted, then signals termination.
    EXPECT_EQ(q.pop()->id, 1u);
    EXPECT_FALSE(q.pop().has_value());
}

// ---------------------------------------------------------------
// End-to-end serving against a real index.
// ---------------------------------------------------------------

class ServeTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload::CorpusConfig cfg;
        cfg.name = "serve-test";
        cfg.numDocs = 20'000;
        cfg.vocabSize = 300;
        cfg.seed = 91;
        corpus_ = new workload::Corpus(cfg);

        workload::QueryWorkloadConfig qcfg;
        qcfg.vocabSize = cfg.vocabSize;
        qcfg.seed = 17;
        queries_ = new std::vector<workload::Query>(
            workload::sampleQueries(qcfg, 24));
        terms_ = new std::vector<TermId>(
            workload::collectTerms(*queries_));
    }

    static void
    TearDownTestSuite()
    {
        delete corpus_;
        delete queries_;
        delete terms_;
        corpus_ = nullptr;
        queries_ = nullptr;
        terms_ = nullptr;
    }

    void TearDown() override
    {
        common::ThreadPool::setGlobalThreads(1);
    }

    /** A fast serve config: every query admitted and completed. */
    static serve::ServeConfig
    lossless(std::size_t count, serve::PipelineMode mode)
    {
        serve::ServeConfig cfg;
        cfg.arrivals.qps = 50'000.0;
        cfg.arrivals.count = count;
        cfg.arrivals.seed = 7;
        cfg.policy = serve::ShedPolicy::Block;
        cfg.mode = mode;
        cfg.warmup = 2;
        return cfg;
    }

    static workload::Corpus *corpus_;
    static std::vector<workload::Query> *queries_;
    static std::vector<TermId> *terms_;
};

workload::Corpus *ServeTest::corpus_ = nullptr;
std::vector<workload::Query> *ServeTest::queries_ = nullptr;
std::vector<TermId> *ServeTest::terms_ = nullptr;

void
expectSameResults(const std::vector<engine::Result> &a,
                  const std::vector<engine::Result> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].doc, b[i].doc);
        EXPECT_EQ(a[i].score, b[i].score); // bit-identical
    }
}

TEST_F(ServeTest, ServeMatchesBatchBitExactly)
{
    common::ThreadPool::setGlobalThreads(4);
    accel::Device device;
    device.loadIndex(corpus_->buildIndex(*terms_));
    auto batch = device.searchBatch(*queries_);

    serve::DeviceBackend backend(device);
    serve::Server server(
        backend, lossless(3 * queries_->size(),
                          serve::PipelineMode::Pipelined));
    auto report = server.run(*queries_);

    ASSERT_EQ(report.completed, report.offered);
    EXPECT_EQ(report.shed, 0u);
    EXPECT_EQ(report.expired, 0u);
    EXPECT_EQ(report.good, report.completed);
    for (const auto &rec : report.records) {
        ASSERT_EQ(rec.status, serve::QueryStatus::Done);
        expectSameResults(rec.topk, batch.perQuery[rec.queryIndex]);
    }
}

TEST_F(ServeTest, PipelinedAndBarrierModesAgreeBitExactly)
{
    common::ThreadPool::setGlobalThreads(4);
    accel::Device device;
    device.loadIndex(corpus_->buildIndex(*terms_));
    serve::DeviceBackend backend(device);

    serve::Server pipelined(
        backend,
        lossless(2 * queries_->size(),
                 serve::PipelineMode::Pipelined));
    auto a = pipelined.run(*queries_);
    serve::Server barrier(
        backend, lossless(2 * queries_->size(),
                          serve::PipelineMode::Barrier));
    auto b = barrier.run(*queries_);

    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i)
        expectSameResults(a.records[i].topk, b.records[i].topk);
}

TEST_F(ServeTest, ShardedServeMatchesShardedBatchBitExactly)
{
    common::ThreadPool::setGlobalThreads(4);
    auto global = corpus_->buildIndex(*terms_);

    api::ShardedDeviceConfig scfg;
    scfg.shards = 2;
    api::ShardedDevice sharded(scfg);
    sharded.loadIndex(global);
    auto batch = sharded.searchBatch(*queries_);

    api::ShardedDevice servedev(scfg);
    servedev.loadIndex(global);
    serve::ShardedBackend backend(servedev);
    serve::Server server(
        backend, lossless(2 * queries_->size(),
                          serve::PipelineMode::Pipelined));
    auto report = server.run(*queries_);

    ASSERT_EQ(report.completed, report.offered);
    for (const auto &rec : report.records) {
        ASSERT_EQ(rec.status, serve::QueryStatus::Done);
        expectSameResults(rec.topk, batch.perQuery[rec.queryIndex]);
    }
}

TEST_F(ServeTest, OverlappedShardReplayMatchesSingleDevice)
{
    // The pipelined ShardedDevice::searchBatch (replay posted to
    // pool workers) must stay bit-identical to one device over the
    // whole corpus, at several thread counts.
    auto global = corpus_->buildIndex(*terms_);
    accel::Device single;
    single.loadIndex(global);
    auto want = single.searchBatch(*queries_);

    for (std::size_t threads : {1u, 2u, 8u}) {
        common::ThreadPool::setGlobalThreads(threads);
        api::ShardedDeviceConfig scfg;
        scfg.shards = 3;
        api::ShardedDevice sharded(scfg);
        sharded.loadIndex(global);
        auto got = sharded.searchBatch(*queries_);
        ASSERT_EQ(got.perQuery.size(), want.perQuery.size());
        for (std::size_t q = 0; q < want.perQuery.size(); ++q)
            expectSameResults(got.perQuery[q], want.perQuery[q]);
    }
}

TEST_F(ServeTest, ExpiredDeadlinesAreNeverGoodput)
{
    common::ThreadPool::setGlobalThreads(2);
    accel::Device device;
    device.loadIndex(corpus_->buildIndex(*terms_));
    serve::DeviceBackend backend(device);

    auto cfg = lossless(50, serve::PipelineMode::Pipelined);
    // A deadline far below queue + execution time: every query
    // either expires at dispatch or completes past its deadline —
    // goodput must be zero either way, and expiry must not crash
    // the pipeline mid-flight.
    cfg.deadlineUs = 1e-3;
    serve::Server server(backend, cfg);
    auto report = server.run(*queries_);

    EXPECT_EQ(report.good, 0u);
    EXPECT_EQ(report.shed, 0u); // Block never sheds at admission
    EXPECT_EQ(report.expired + report.completed, report.offered);
    for (const auto &rec : report.records) {
        if (rec.status == serve::QueryStatus::Done) {
            EXPECT_FALSE(rec.metDeadline);
        } else {
            EXPECT_EQ(rec.status, serve::QueryStatus::Expired);
            EXPECT_TRUE(rec.topk.empty());
        }
    }
}

TEST_F(ServeTest, ServeReportAccountingIsConsistent)
{
    common::ThreadPool::setGlobalThreads(2);
    accel::Device device;
    device.loadIndex(corpus_->buildIndex(*terms_));
    serve::DeviceBackend backend(device);

    // Overdrive a tiny queue so shedding actually happens.
    serve::ServeConfig cfg;
    cfg.arrivals.qps = 200'000.0;
    cfg.arrivals.count = 300;
    cfg.arrivals.seed = 3;
    cfg.queueCapacity = 4;
    cfg.policy = serve::ShedPolicy::DropTail;
    cfg.warmup = 2;
    serve::Server server(backend, cfg);
    auto report = server.run(*queries_);

    EXPECT_EQ(report.offered, 300u);
    EXPECT_EQ(report.completed + report.shed + report.expired,
              report.offered);
    EXPECT_EQ(report.admission.offered, 300u);
    EXPECT_LE(report.admission.peakDepth, 4u);
    // Every completed query still returns the exact batch answer.
    auto batch = device.searchBatch(*queries_);
    for (const auto &rec : report.records) {
        if (rec.status == serve::QueryStatus::Done)
            expectSameResults(rec.topk,
                              batch.perQuery[rec.queryIndex]);
    }
}

} // namespace
