/**
 * @file
 * Golden regression suite: a fixed-seed corpus and 50 canonical
 * queries whose top-k results are pinned byte-for-byte against a
 * checked-in fixture. Scores are compared on their exact float bit
 * patterns — any change to scoring, compression, traversal order,
 * tie-breaking or the resilience fast path shows up as a diff here
 * before it ships.
 *
 * Regenerating (after an INTENDED result change):
 *   BOSS_GOLDEN_REGEN=1 ./tests/test_golden
 * then commit the updated tests/golden/topk50.txt with a note
 * explaining why results moved.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/live_device.h"
#include "api/sharded_device.h"
#include "boss/device.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "workload/corpus.h"
#include "workload/queries.h"

#ifndef BOSS_GOLDEN_DIR
#error "BOSS_GOLDEN_DIR must point at the checked-in fixtures"
#endif

namespace
{

using namespace boss;

constexpr std::size_t kQueries = 50;

std::string
goldenPath()
{
    return std::string(BOSS_GOLDEN_DIR) + "/topk50.txt";
}

workload::Corpus &
goldenCorpus()
{
    static workload::Corpus *corpus = [] {
        workload::CorpusConfig cfg;
        cfg.name = "golden";
        cfg.numDocs = 25'000;
        cfg.vocabSize = 500;
        cfg.seed = 0x60D5EED;
        return new workload::Corpus(cfg);
    }();
    return *corpus;
}

std::vector<workload::Query>
goldenQueries()
{
    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = goldenCorpus().config().vocabSize;
    qcfg.seed = 0xCA;
    return workload::sampleQueries(qcfg, kQueries);
}

/**
 * Serialize per-query results to the fixture text format. Scores
 * are written as the hex bits of the float so the comparison is
 * exact (no decimal round-trip noise):
 *   query <i> <nResults>
 *   <docId> <scoreBitsHex>
 */
std::string
formatResults(
    const std::vector<std::vector<engine::Result>> &perQuery)
{
    std::ostringstream os;
    os << "# boss golden top-k fixture: " << perQuery.size()
       << " queries, scores as float bits\n";
    for (std::size_t q = 0; q < perQuery.size(); ++q) {
        os << "query " << q << " " << perQuery[q].size() << "\n";
        for (const auto &r : perQuery[q]) {
            std::uint32_t bits;
            static_assert(sizeof(bits) == sizeof(r.score));
            std::memcpy(&bits, &r.score, sizeof(bits));
            os << r.doc << " " << std::hex << bits << std::dec
               << "\n";
        }
    }
    return os.str();
}

std::vector<std::vector<engine::Result>>
runGoldenBatch()
{
    accel::Device device;
    device.loadIndex(goldenCorpus().buildIndex(
        workload::collectTerms(goldenQueries())));
    return device.searchBatch(goldenQueries()).perQuery;
}

TEST(GoldenTest, Top50QueriesMatchCheckedInFixture)
{
    std::string actual = formatResults(runGoldenBatch());

    if (std::getenv("BOSS_GOLDEN_REGEN") != nullptr) {
        std::ofstream os(goldenPath(), std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << goldenPath();
        os << actual;
        GTEST_SKIP() << "regenerated " << goldenPath()
                     << " — commit it with an explanation";
    }

    std::ifstream is(goldenPath(), std::ios::binary);
    ASSERT_TRUE(is) << "missing fixture " << goldenPath()
                    << " (run with BOSS_GOLDEN_REGEN=1 once)";
    std::stringstream expected;
    expected << is.rdbuf();

    // Byte-for-byte: docIDs, order, and exact score bit patterns.
    EXPECT_EQ(expected.str(), actual)
        << "golden results moved; if intended, regenerate with "
           "BOSS_GOLDEN_REGEN=1 and commit the new fixture";
}

TEST(GoldenTest, ResultsAreThreadCountInvariant)
{
    common::ThreadPool::setGlobalThreads(1);
    std::string serial = formatResults(runGoldenBatch());
    common::ThreadPool::setGlobalThreads(8);
    std::string parallel = formatResults(runGoldenBatch());
    common::ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(serial, parallel);
}

/**
 * Segmented-index fixture: one fixed mutation history — build,
 * append, delete, merge — pinned byte-for-byte. Covers the live
 * path end to end (rebake-at-publish, tombstone filtering, merge
 * compaction, per-segment replay + global merge); any drift in the
 * segment lifecycle's scoring shows up as a diff in the top-50.
 */
std::string
segmentedGoldenPath()
{
    return std::string(BOSS_GOLDEN_DIR) + "/topk50_segments.txt";
}

std::vector<TermId>
segmentedGoldenDoc(std::uint32_t d, std::uint32_t vocab)
{
    Rng rng(splitSeed(0x5E60D, d));
    const auto len = 6 + static_cast<std::uint32_t>(rng.below(40));
    std::vector<TermId> tokens;
    tokens.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i)
        tokens.push_back(static_cast<TermId>(rng.below(vocab)));
    return tokens;
}

TEST(GoldenTest, SegmentedLifecycleMatchesFixture)
{
    const auto vocab = goldenCorpus().config().vocabSize;
    api::LiveDeviceConfig cfg;
    cfg.device.k = 50;
    cfg.live.termBoundHint = vocab;
    cfg.live.maxBufferedDocs = 512;
    cfg.live.maxSegments = 2;
    cfg.live.mergeFanIn = 3;
    api::LiveDevice device(cfg);
    auto &live = device.live();

    // Build, append, delete, merge — a fixed mutation history.
    for (std::uint32_t d = 0; d < 3000; ++d)
        live.append(segmentedGoldenDoc(d, vocab));
    live.refresh();
    for (DocId d = 0; d < 3000; d += 7)
        ASSERT_TRUE(live.erase(d));
    for (std::uint32_t d = 3000; d < 4000; ++d)
        live.append(segmentedGoldenDoc(d, vocab));
    live.refresh();
    while (live.mergeOnce()) {
    }

    std::vector<std::vector<engine::Result>> perQuery;
    for (const auto &q : goldenQueries())
        perQuery.push_back(device.search(q).topk);
    std::string actual = formatResults(perQuery);

    if (std::getenv("BOSS_GOLDEN_REGEN") != nullptr) {
        std::ofstream os(segmentedGoldenPath(), std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << segmentedGoldenPath();
        os << actual;
        GTEST_SKIP() << "regenerated " << segmentedGoldenPath()
                     << " — commit it with an explanation";
    }

    std::ifstream is(segmentedGoldenPath(), std::ios::binary);
    ASSERT_TRUE(is) << "missing fixture " << segmentedGoldenPath()
                    << " (run with BOSS_GOLDEN_REGEN=1 once)";
    std::stringstream expected;
    expected << is.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "segmented golden results moved; if intended, "
           "regenerate with BOSS_GOLDEN_REGEN=1 and commit the "
           "new fixture";
}

TEST(GoldenTest, ShardingPreservesGoldenResults)
{
    // The sharded stack must reproduce the fixture exactly: merge
    // order, tie-breaks and score floats included.
    api::ShardedDeviceConfig cfg;
    cfg.shards = 4;
    api::ShardedDevice device(cfg);
    device.loadShards(goldenCorpus().buildShardedIndex(
        workload::collectTerms(goldenQueries()), 4));
    std::string sharded =
        formatResults(device.searchBatch(goldenQueries()).perQuery);

    std::ifstream is(goldenPath(), std::ios::binary);
    if (!is)
        GTEST_SKIP() << "fixture not generated yet";
    std::stringstream expected;
    expected << is.rdbuf();
    EXPECT_EQ(expected.str(), sharded);
}

} // namespace
