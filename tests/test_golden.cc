/**
 * @file
 * Golden regression suite: a fixed-seed corpus and 50 canonical
 * queries whose top-k results are pinned byte-for-byte against a
 * checked-in fixture. Scores are compared on their exact float bit
 * patterns — any change to scoring, compression, traversal order,
 * tie-breaking or the resilience fast path shows up as a diff here
 * before it ships.
 *
 * Regenerating (after an INTENDED result change):
 *   BOSS_GOLDEN_REGEN=1 ./tests/test_golden
 * then commit the updated tests/golden/topk50.txt with a note
 * explaining why results moved.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/sharded_device.h"
#include "boss/device.h"
#include "common/thread_pool.h"
#include "workload/corpus.h"
#include "workload/queries.h"

#ifndef BOSS_GOLDEN_DIR
#error "BOSS_GOLDEN_DIR must point at the checked-in fixtures"
#endif

namespace
{

using namespace boss;

constexpr std::size_t kQueries = 50;

std::string
goldenPath()
{
    return std::string(BOSS_GOLDEN_DIR) + "/topk50.txt";
}

workload::Corpus &
goldenCorpus()
{
    static workload::Corpus *corpus = [] {
        workload::CorpusConfig cfg;
        cfg.name = "golden";
        cfg.numDocs = 25'000;
        cfg.vocabSize = 500;
        cfg.seed = 0x60D5EED;
        return new workload::Corpus(cfg);
    }();
    return *corpus;
}

std::vector<workload::Query>
goldenQueries()
{
    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = goldenCorpus().config().vocabSize;
    qcfg.seed = 0xCA;
    return workload::sampleQueries(qcfg, kQueries);
}

/**
 * Serialize per-query results to the fixture text format. Scores
 * are written as the hex bits of the float so the comparison is
 * exact (no decimal round-trip noise):
 *   query <i> <nResults>
 *   <docId> <scoreBitsHex>
 */
std::string
formatResults(
    const std::vector<std::vector<engine::Result>> &perQuery)
{
    std::ostringstream os;
    os << "# boss golden top-k fixture: " << perQuery.size()
       << " queries, scores as float bits\n";
    for (std::size_t q = 0; q < perQuery.size(); ++q) {
        os << "query " << q << " " << perQuery[q].size() << "\n";
        for (const auto &r : perQuery[q]) {
            std::uint32_t bits;
            static_assert(sizeof(bits) == sizeof(r.score));
            std::memcpy(&bits, &r.score, sizeof(bits));
            os << r.doc << " " << std::hex << bits << std::dec
               << "\n";
        }
    }
    return os.str();
}

std::vector<std::vector<engine::Result>>
runGoldenBatch()
{
    accel::Device device;
    device.loadIndex(goldenCorpus().buildIndex(
        workload::collectTerms(goldenQueries())));
    return device.searchBatch(goldenQueries()).perQuery;
}

TEST(GoldenTest, Top50QueriesMatchCheckedInFixture)
{
    std::string actual = formatResults(runGoldenBatch());

    if (std::getenv("BOSS_GOLDEN_REGEN") != nullptr) {
        std::ofstream os(goldenPath(), std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << goldenPath();
        os << actual;
        GTEST_SKIP() << "regenerated " << goldenPath()
                     << " — commit it with an explanation";
    }

    std::ifstream is(goldenPath(), std::ios::binary);
    ASSERT_TRUE(is) << "missing fixture " << goldenPath()
                    << " (run with BOSS_GOLDEN_REGEN=1 once)";
    std::stringstream expected;
    expected << is.rdbuf();

    // Byte-for-byte: docIDs, order, and exact score bit patterns.
    EXPECT_EQ(expected.str(), actual)
        << "golden results moved; if intended, regenerate with "
           "BOSS_GOLDEN_REGEN=1 and commit the new fixture";
}

TEST(GoldenTest, ResultsAreThreadCountInvariant)
{
    common::ThreadPool::setGlobalThreads(1);
    std::string serial = formatResults(runGoldenBatch());
    common::ThreadPool::setGlobalThreads(8);
    std::string parallel = formatResults(runGoldenBatch());
    common::ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(serial, parallel);
}

TEST(GoldenTest, ShardingPreservesGoldenResults)
{
    // The sharded stack must reproduce the fixture exactly: merge
    // order, tie-breaks and score floats included.
    api::ShardedDeviceConfig cfg;
    cfg.shards = 4;
    api::ShardedDevice device(cfg);
    device.loadShards(goldenCorpus().buildShardedIndex(
        workload::collectTerms(goldenQueries()), 4));
    std::string sharded =
        formatResults(device.searchBatch(goldenQueries()).perQuery);

    std::ifstream is(goldenPath(), std::ios::binary);
    if (!is)
        GTEST_SKIP() << "fixture not generated yet";
    std::stringstream expected;
    expected << is.rdbuf();
    EXPECT_EQ(expected.str(), sharded);
}

} // namespace
