/**
 * @file
 * Segment-directory crash tests: a publish that dies half-written
 * must be invisible after recovery.
 *
 * The harness commits epoch A, stages epoch B (new segment + new
 * manifest + tombstones on old docs), then replays every possible
 * crash point by truncating each newly written file at every byte
 * boundary — and separately flipping every byte — before
 * recovering. Recovery must land on exactly epoch A's or epoch B's
 * committed state (a byte flip that misses every checksummed range,
 * e.g. in unused padding, legitimately leaves B intact); a partial
 * segment or torn manifest must never surface as a third state.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "engine/segment_search.h"
#include "index/segments/live_index.h"

namespace
{

using namespace boss;
using index::segments::LiveIndex;
using index::segments::LiveIndexConfig;

namespace fs = std::filesystem;

constexpr std::size_t kTopK = 50;

/** Everything observable about a committed directory state. */
struct CommittedState
{
    std::uint64_t epoch = 0;
    std::uint32_t liveDocs = 0;
    std::uint32_t segments = 0;
    std::vector<std::vector<engine::Result>> results;

    bool
    operator==(const CommittedState &o) const
    {
        return epoch == o.epoch && liveDocs == o.liveDocs &&
               segments == o.segments && results == o.results;
    }
};

std::vector<engine::QueryPlan>
probePlans()
{
    std::vector<engine::QueryPlan> plans;
    {
        engine::QueryPlan p;
        p.groups = {{1}};
        p.allTerms = {1};
        plans.push_back(p);
    }
    {
        engine::QueryPlan p; // union
        p.groups = {{2}, {5}};
        p.allTerms = {2, 5};
        plans.push_back(p);
    }
    {
        engine::QueryPlan p; // intersection
        p.groups = {{3, 7}};
        p.allTerms = {3, 7};
        plans.push_back(p);
    }
    return plans;
}

CommittedState
observe(LiveIndex &live)
{
    CommittedState st;
    st.epoch = live.epoch();
    st.liveDocs = live.liveDocs();
    st.segments = live.segmentCount();
    auto snap = live.snapshot();
    for (const auto &plan : probePlans())
        st.results.push_back(
            engine::searchSegments(*snap, plan, kTopK, {}));
    return st;
}

LiveIndexConfig
dirConfig(const fs::path &dir)
{
    LiveIndexConfig cfg;
    cfg.dir = dir.string();
    cfg.termBoundHint = 16;
    cfg.maxBufferedDocs = 4; // several segments per epoch
    return cfg;
}

/** Recover the directory and return what became visible. */
CommittedState
recoverAndObserve(const fs::path &dir)
{
    LiveIndex live(dirConfig(dir));
    return observe(live);
}

std::map<std::string, std::vector<char>>
readDir(const fs::path &dir)
{
    std::map<std::string, std::vector<char>> files;
    for (const auto &e : fs::directory_iterator(dir)) {
        std::ifstream in(e.path(), std::ios::binary);
        files[e.path().filename().string()] = {
            std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
    }
    return files;
}

void
restoreDir(const fs::path &dir,
           const std::map<std::string, std::vector<char>> &files)
{
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (const auto &[name, bytes] : files) {
        std::ofstream out(dir / name, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
}

void
writeFile(const fs::path &path, const std::vector<char> &bytes)
{
    std::ofstream out(path,
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

struct Fixture
{
    fs::path dir;
    std::map<std::string, std::vector<char>> afterA;
    std::map<std::string, std::vector<char>> afterB;
    std::vector<std::string> newFiles; ///< written by the B publish
    CommittedState stateA;
    CommittedState stateB;
};

/** Commit epoch A, then stage epoch B on top of it. */
Fixture
makeFixture(const std::string &name)
{
    Fixture fx;
    fx.dir = fs::temp_directory_path() / name;
    fs::remove_all(fx.dir);

    {
        LiveIndex live(dirConfig(fx.dir));
        for (std::uint32_t d = 0; d < 10; ++d)
            live.append({1, 2, TermId(3 + d % 5), TermId(d % 8)});
        live.refresh();
        fx.stateA = observe(live);
    }
    fx.afterA = readDir(fx.dir);

    {
        LiveIndex live(dirConfig(fx.dir));
        EXPECT_EQ(observe(live), fx.stateA); // clean recovery first
        for (std::uint32_t d = 0; d < 6; ++d)
            live.append({1, 5, TermId(2 + d % 6)});
        EXPECT_TRUE(live.erase(0)); // tombstone an epoch-A doc
        EXPECT_TRUE(live.erase(7));
        live.refresh();
        fx.stateB = observe(live);
    }
    fx.afterB = readDir(fx.dir);

    for (const auto &[fname, bytes] : fx.afterB) {
        auto it = fx.afterA.find(fname);
        if (it == fx.afterA.end() || it->second != bytes)
            fx.newFiles.push_back(fname);
    }
    EXPECT_GE(fx.newFiles.size(), 2u); // >=1 segment + manifest
    EXPECT_NE(fx.stateA, fx.stateB);
    return fx;
}

void
expectCommittedState(const Fixture &fx, const CommittedState &got,
                     const std::string &what)
{
    EXPECT_TRUE(got == fx.stateA || got == fx.stateB)
        << what << ": recovered epoch " << got.epoch << " with "
        << got.liveDocs << " live docs in " << got.segments
        << " segments is neither committed state (A epoch "
        << fx.stateA.epoch << ", B epoch " << fx.stateB.epoch
        << ")";
}

TEST(SegmentCrash, TruncationAtEveryByteBoundary)
{
    const Fixture fx = makeFixture("boss_crash_trunc");
    for (const std::string &victim : fx.newFiles) {
        const auto &full = fx.afterB.at(victim);
        for (std::size_t len = 0; len < full.size(); ++len) {
            restoreDir(fx.dir, fx.afterB);
            writeFile(fx.dir / victim,
                      {full.begin(),
                       full.begin() + static_cast<long>(len)});
            expectCommittedState(
                fx, recoverAndObserve(fx.dir),
                victim + " truncated to " + std::to_string(len));
        }
    }
    fs::remove_all(fx.dir);
}

TEST(SegmentCrash, SingleByteCorruption)
{
    const Fixture fx = makeFixture("boss_crash_flip");
    for (const std::string &victim : fx.newFiles) {
        const auto &full = fx.afterB.at(victim);
        for (std::size_t pos = 0; pos < full.size(); ++pos) {
            restoreDir(fx.dir, fx.afterB);
            auto damaged = full;
            damaged[pos] = static_cast<char>(damaged[pos] ^ 0x5A);
            writeFile(fx.dir / victim, damaged);
            expectCommittedState(fx, recoverAndObserve(fx.dir),
                                 victim + " byte " +
                                     std::to_string(pos) +
                                     " flipped");
        }
    }
    fs::remove_all(fx.dir);
}

TEST(SegmentCrash, MissingSegmentFileFallsBackToPriorEpoch)
{
    const Fixture fx = makeFixture("boss_crash_missing");
    for (const std::string &victim : fx.newFiles) {
        restoreDir(fx.dir, fx.afterB);
        fs::remove(fx.dir / victim);
        const auto got = recoverAndObserve(fx.dir);
        expectCommittedState(fx, got, victim + " removed");
        EXPECT_EQ(got, fx.stateA); // a whole missing file can
                                   // never pass validation
    }
    fs::remove_all(fx.dir);
}

TEST(SegmentCrash, StrayFilesAreIgnored)
{
    const Fixture fx = makeFixture("boss_crash_stray");
    restoreDir(fx.dir, fx.afterB);
    writeFile(fx.dir / "seg-9999999999.boss",
              {'j', 'u', 'n', 'k'});
    writeFile(fx.dir / "manifest-9999999999",
              {'j', 'u', 'n', 'k'});
    writeFile(fx.dir / "unrelated.tmp", {'x'});
    expectCommittedState(fx, recoverAndObserve(fx.dir),
                         "stray files present");
    fs::remove_all(fx.dir);
}

TEST(SegmentCrash, NoManifestMeansEmptyIndex)
{
    const Fixture fx = makeFixture("boss_crash_nomanifest");
    restoreDir(fx.dir, fx.afterB);
    for (const auto &e : fs::directory_iterator(fx.dir)) {
        if (e.path().filename().string().rfind("manifest-", 0) ==
            0)
            fs::remove(e.path());
    }
    LiveIndex live(dirConfig(fx.dir));
    EXPECT_EQ(live.liveDocs(), 0u);
    EXPECT_EQ(live.segmentCount(), 0u);
    // The directory is usable again: append + refresh republishes.
    live.append({1, 2, 3});
    live.refresh();
    EXPECT_EQ(live.liveDocs(), 1u);
    fs::remove_all(fx.dir);
}

TEST(SegmentCrash, RecoveredDirectoryKeepsIngesting)
{
    const Fixture fx = makeFixture("boss_crash_continue");
    // Damage the B manifest so recovery lands on A, then confirm
    // the fallen-back directory accepts new commits.
    restoreDir(fx.dir, fx.afterB);
    for (const std::string &victim : fx.newFiles) {
        const auto &full = fx.afterB.at(victim);
        writeFile(fx.dir / victim,
                  {full.begin(),
                   full.begin() + static_cast<long>(
                                      full.size() / 2)});
    }
    {
        LiveIndex live(dirConfig(fx.dir));
        const auto got = observe(live);
        EXPECT_EQ(got, fx.stateA);
        live.append({9, 10, 11});
        live.refresh();
        EXPECT_EQ(live.liveDocs(), fx.stateA.liveDocs + 1);
    }
    // And the new commit is durable.
    {
        LiveIndex live(dirConfig(fx.dir));
        EXPECT_EQ(live.liveDocs(), fx.stateA.liveDocs + 1);
    }
    fs::remove_all(fx.dir);
}

} // namespace
