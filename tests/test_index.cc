/**
 * @file
 * Unit tests for the inverted-index substrate: BM25, the builder,
 * block metadata, the block decoder, memory layout and
 * serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "index/block_decoder.h"
#include "index/inverted_index.h"
#include "index/memory_layout.h"
#include "index/serialize.h"

namespace
{

using namespace boss;
using namespace boss::index;

PostingList
randomPostings(std::size_t n, std::uint32_t numDocs, std::uint64_t seed)
{
    Rng rng(seed);
    std::set<DocId> docs;
    while (docs.size() < n)
        docs.insert(static_cast<DocId>(rng.below(numDocs)));
    PostingList out;
    for (DocId d : docs)
        out.push_back({d, 1 + static_cast<TermFreq>(rng.below(20))});
    return out;
}

InvertedIndex
smallIndex(std::uint64_t seed = 1)
{
    const std::uint32_t numDocs = 5000;
    Rng rng(seed);
    std::vector<std::uint32_t> lengths(numDocs);
    for (auto &l : lengths)
        l = 50 + static_cast<std::uint32_t>(rng.below(500));

    IndexBuilder builder;
    builder.setDocLengths(lengths);
    builder.addTerm(0, randomPostings(900, numDocs, seed + 10));
    builder.addTerm(1, randomPostings(300, numDocs, seed + 11));
    builder.addTerm(2, randomPostings(40, numDocs, seed + 12));
    builder.addTerm(3, randomPostings(1, numDocs, seed + 13));
    return builder.build();
}

// ---------------------------------------------------------------
// BM25
// ---------------------------------------------------------------

TEST(Bm25Test, IdfDecreasesWithDf)
{
    Bm25 bm25({}, 100000, 300.0);
    EXPECT_GT(bm25.idf(10), bm25.idf(100));
    EXPECT_GT(bm25.idf(100), bm25.idf(10000));
    EXPECT_GT(bm25.idf(99999), 0.0); // always positive (the +1 form)
}

TEST(Bm25Test, NormGrowsWithDocLength)
{
    Bm25 bm25({}, 1000, 300.0);
    EXPECT_LT(bm25.docNorm(100), bm25.docNorm(300));
    EXPECT_LT(bm25.docNorm(300), bm25.docNorm(900));
    // At |D| == avgdl, norm == k1 exactly.
    EXPECT_NEAR(bm25.docNorm(300), 1.2f, 1e-5f);
}

TEST(Bm25Test, TermScoreSaturatesInTf)
{
    Bm25 bm25({}, 1000, 300.0);
    double idf = bm25.idf(50);
    float norm = bm25.docNorm(300);
    Score s1 = bm25.termScore(idf, 1, norm);
    Score s5 = bm25.termScore(idf, 5, norm);
    Score s50 = bm25.termScore(idf, 50, norm);
    EXPECT_LT(s1, s5);
    EXPECT_LT(s5, s50);
    // Saturation: the score approaches idf*(k1+1) from below.
    EXPECT_LT(s50, static_cast<Score>(idf * 2.2));
}

TEST(Bm25Test, FixedPointTracksFloat)
{
    Bm25 bm25({}, 100000, 300.0);
    double idf = bm25.idf(123);
    for (TermFreq tf : {1u, 3u, 17u}) {
        for (std::uint32_t len : {50u, 300u, 2000u}) {
            float norm = bm25.docNorm(len);
            double exact = bm25.termScore(idf, tf, norm);
            double fixed = bm25.termScoreFixed(idf, tf, norm).toDouble();
            EXPECT_NEAR(fixed, exact, 2e-3) << "tf=" << tf;
        }
    }
}

// ---------------------------------------------------------------
// Builder + block decode round trip.
// ---------------------------------------------------------------

class BuilderRoundTrip
    : public ::testing::TestWithParam<compress::Scheme>
{
};

TEST_P(BuilderRoundTrip, DecodesBackToPostings)
{
    const std::uint32_t numDocs = 3000;
    std::vector<std::uint32_t> lengths(numDocs, 200);
    IndexBuilder builder;
    builder.forceScheme(GetParam());
    builder.setDocLengths(lengths);
    PostingList postings = randomPostings(700, numDocs, 99);
    builder.addTerm(0, postings);
    InvertedIndex index = builder.build();

    EXPECT_EQ(index.list(0).scheme, GetParam());
    EXPECT_EQ(decodeAll(index.list(0)), postings);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, BuilderRoundTrip,
    ::testing::ValuesIn(compress::kAllSchemes),
    [](const ::testing::TestParamInfo<compress::Scheme> &info) {
        return std::string(schemeName(info.param));
    });

TEST(Builder, HybridRoundTrips)
{
    InvertedIndex index = smallIndex();
    for (TermId t = 0; t < index.numTerms(); ++t) {
        PostingList decoded = decodeAll(index.list(t));
        EXPECT_EQ(decoded.size(), index.list(t).docCount);
        EXPECT_TRUE(isValidPostingList(decoded));
    }
}

TEST(Builder, BlockMetadataConsistent)
{
    InvertedIndex index = smallIndex();
    const auto &list = index.list(0);
    PostingList decoded = decodeAll(list);

    std::size_t offset = 0;
    for (std::uint32_t b = 0; b < list.numBlocks(); ++b) {
        const BlockMeta &meta = list.blocks[b];
        EXPECT_EQ(meta.firstDoc, decoded[offset].doc);
        EXPECT_EQ(meta.lastDoc,
                  decoded[offset + meta.numElems - 1].doc);
        EXPECT_LE(meta.numElems, kBlockSize);
        offset += meta.numElems;
    }
    EXPECT_EQ(offset, decoded.size());
}

TEST(Builder, BlockMaxScoreIsUpperBound)
{
    InvertedIndex index = smallIndex();
    const auto &list = index.list(0);
    PostingList decoded = decodeAll(list);

    std::size_t offset = 0;
    for (std::uint32_t b = 0; b < list.numBlocks(); ++b) {
        const BlockMeta &meta = list.blocks[b];
        float observedMax = 0.f;
        for (std::uint32_t i = 0; i < meta.numElems; ++i) {
            const auto &p = decoded[offset + i];
            float s = index.scorer().termScore(list.idf, p.tf,
                                               index.doc(p.doc).norm);
            observedMax = std::max(observedMax, s);
        }
        EXPECT_FLOAT_EQ(meta.maxTermScore, observedMax);
        EXPECT_LE(observedMax, list.maxTermScore);
        offset += meta.numElems;
    }
}

TEST(Builder, SingleElementList)
{
    std::vector<std::uint32_t> lengths(100, 100);
    IndexBuilder builder;
    builder.setDocLengths(lengths);
    builder.addTerm(0, {{57, 3}});
    InvertedIndex index = builder.build();
    EXPECT_EQ(index.list(0).numBlocks(), 1u);
    EXPECT_EQ(decodeAll(index.list(0)),
              (PostingList{{57, 3}}));
}

TEST(Builder, DocZeroIsEncodable)
{
    std::vector<std::uint32_t> lengths(10, 100);
    IndexBuilder builder;
    builder.setDocLengths(lengths);
    builder.addTerm(0, {{0, 1}, {5, 2}});
    InvertedIndex index = builder.build();
    PostingList decoded = decodeAll(index.list(0));
    EXPECT_EQ(decoded[0].doc, 0u);
    EXPECT_EQ(decoded[1].doc, 5u);
}

TEST(Builder, HybridBeatsEveryFixedScheme)
{
    const std::uint32_t numDocs = 3000;
    std::vector<std::uint32_t> lengths(numDocs, 200);
    PostingList postings = randomPostings(700, numDocs, 7);

    auto sizeWith = [&](std::optional<compress::Scheme> s) {
        IndexBuilder b;
        if (s)
            b.forceScheme(*s);
        b.setDocLengths(lengths);
        b.addTerm(0, postings);
        return b.build().list(0).sizeBytes();
    };

    std::uint64_t hybrid = sizeWith(std::nullopt);
    for (compress::Scheme s : compress::kAllSchemes)
        EXPECT_LE(hybrid, sizeWith(s)) << schemeName(s);
}

// ---------------------------------------------------------------
// Memory layout.
// ---------------------------------------------------------------

TEST(MemoryLayoutTest, RegionsDisjointAndAligned)
{
    InvertedIndex index = smallIndex();
    const Addr align = 256;
    MemoryLayout layout(index, 0x1000, align);

    Addr prevEnd = 0x1000;
    for (TermId t = 0; t < index.numTerms(); ++t) {
        const auto &p = layout.list(t);
        EXPECT_EQ(p.metaAddr % align, 0u);
        EXPECT_EQ(p.docAddr % align, 0u);
        EXPECT_EQ(p.tfAddr % align, 0u);
        EXPECT_GE(p.metaAddr, prevEnd);
        EXPECT_GT(p.docAddr, p.metaAddr);
        EXPECT_GT(p.tfAddr, p.docAddr);
        prevEnd = p.tfAddr + index.list(t).tfPayload.size();
    }
    EXPECT_GE(layout.docNormAddr(0), prevEnd);
    EXPECT_EQ(layout.docNormAddr(10) - layout.docNormAddr(0),
              10 * kDocNormBytes);
    EXPECT_GT(layout.end(), layout.base());
    EXPECT_GE(layout.sizeBytes(), index.sizeBytes());
}

// ---------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------

TEST(Serialize, RoundTripsExactly)
{
    InvertedIndex index = smallIndex(5);
    std::stringstream buf;
    saveIndex(index, buf);
    InvertedIndex loaded = loadIndex(buf);

    EXPECT_EQ(loaded.numDocs(), index.numDocs());
    EXPECT_EQ(loaded.numTerms(), index.numTerms());
    EXPECT_DOUBLE_EQ(loaded.avgDocLen(), index.avgDocLen());
    EXPECT_EQ(loaded.sizeBytes(), index.sizeBytes());
    for (TermId t = 0; t < index.numTerms(); ++t) {
        EXPECT_EQ(loaded.list(t).scheme, index.list(t).scheme);
        EXPECT_EQ(decodeAll(loaded.list(t)), decodeAll(index.list(t)));
        EXPECT_FLOAT_EQ(loaded.list(t).idf, index.list(t).idf);
    }
    for (DocId d = 0; d < index.numDocs(); ++d) {
        EXPECT_EQ(loaded.doc(d).length, index.doc(d).length);
        EXPECT_FLOAT_EQ(loaded.doc(d).norm, index.doc(d).norm);
    }
}

TEST(Serialize, RejectsGarbage)
{
    std::stringstream buf;
    buf << "this is not an index";
    EXPECT_EXIT(loadIndex(buf), ::testing::ExitedWithCode(1),
                "bad magic|truncated");
}

TEST(Serialize, TryLoadAcceptsCleanStream)
{
    InvertedIndex index = smallIndex(6);
    std::stringstream buf;
    saveIndex(index, buf);
    std::string error;
    auto loaded = tryLoadIndex(buf, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->numDocs(), index.numDocs());
    EXPECT_EQ(loaded->sizeBytes(), index.sizeBytes());
}

TEST(Serialize, RejectsTruncationAtAnyLength)
{
    InvertedIndex index = smallIndex(7);
    std::stringstream buf;
    saveIndex(index, buf);
    const std::string image = buf.str();
    ASSERT_GT(image.size(), 256u);

    // Every prefix is malformed: sample cut points densely at both
    // ends (headers, trailing CRC) and sparsely through the body.
    std::vector<std::size_t> cuts;
    for (std::size_t i = 0; i < 64; ++i)
        cuts.push_back(i);
    for (std::size_t i = 64; i + 64 < image.size(); i += 997)
        cuts.push_back(i);
    for (std::size_t i = image.size() - 64; i < image.size(); ++i)
        cuts.push_back(i);
    for (std::size_t cut : cuts) {
        std::stringstream damaged(image.substr(0, cut));
        std::string error;
        EXPECT_FALSE(tryLoadIndex(damaged, &error).has_value())
            << "prefix of " << cut << " bytes was accepted";
    }
}

TEST(Serialize, RejectsOversizedVectorCounts)
{
    InvertedIndex index = smallIndex(8);
    std::stringstream buf;
    saveIndex(index, buf);
    std::string image = buf.str();

    // The doc-table count sits right after magic(4) + version(4) +
    // k1(8) + b(8) + avgDocLen(8) + headerCrc(4) = 36 bytes.
    // Overwrite it with a count far past the file size: the loader
    // must reject it from the length budget alone, before
    // allocating anything.
    const std::size_t countOff = 36;
    std::uint64_t huge = 1ull << 60;
    std::memcpy(image.data() + countOff, &huge, sizeof(huge));
    std::stringstream damaged(image);
    std::string error;
    EXPECT_FALSE(tryLoadIndex(damaged, &error).has_value());
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(Serialize, FileLoaderRejectsTrailingGarbage)
{
    InvertedIndex index = smallIndex(9);
    std::string path =
        ::testing::TempDir() + "boss_trailing_garbage.idx";
    {
        std::ofstream os(path, std::ios::binary);
        saveIndex(index, os);
        os << "extra bytes after the index";
    }
    EXPECT_EXIT(loadIndexFile(path), ::testing::ExitedWithCode(1),
                "trailing garbage");
    std::remove(path.c_str());
}

TEST(Serialize, BlockCrcsSurviveRoundTrip)
{
    InvertedIndex index = smallIndex(10);
    std::stringstream buf;
    saveIndex(index, buf);
    InvertedIndex loaded = loadIndex(buf);
    for (TermId t = 0; t < index.numTerms(); ++t) {
        const auto &a = index.list(t);
        const auto &b = loaded.list(t);
        ASSERT_EQ(a.blocks.size(), b.blocks.size());
        for (std::size_t i = 0; i < a.blocks.size(); ++i) {
            EXPECT_EQ(a.blocks[i].docCrc, b.blocks[i].docCrc);
            EXPECT_EQ(a.blocks[i].tfCrc, b.blocks[i].tfCrc);
            EXPECT_NE(b.blocks[i].docCrc, 0u); // real payloads hash
        }
    }
}

} // namespace
