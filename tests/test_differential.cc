/**
 * @file
 * Differential correctness test: randomized queries through the
 * full engine vs two references.
 *
 * Reference 1 is the repo's naiveTopK oracle (same stored index
 * floats, exhaustive evaluation): the engine must match it
 * bit-for-bit — early termination is lossless by design.
 *
 * Reference 2 is computed in this file from the raw corpus with no
 * index at all: double-precision BM25 over the uncompressed posting
 * lists. The stored index rounds idf and norms to float, so scores
 * agree only within tolerance; the assertions are phrased so a
 * legitimate last-ulp difference at the k-th rank boundary can never
 * flip the test (every returned score is near its reference value
 * and no skipped document beats the returned cutoff by more than the
 * tolerance).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "engine/execute.h"
#include "engine/plan.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;

constexpr std::size_t kTopK = 50;
constexpr std::size_t kQueriesPerCorpus = 200;

/** Independent double-precision BM25 over raw corpus postings. */
class ReferenceScorer
{
  public:
    explicit ReferenceScorer(const workload::Corpus &corpus)
        : corpus_(corpus)
    {
        const auto &lengths = corpus.docLengths();
        double total = 0.0;
        for (auto len : lengths)
            total += static_cast<double>(len);
        avgdl_ = total / static_cast<double>(lengths.size());
        numDocs_ = static_cast<double>(lengths.size());
    }

    /** All matching docs with their scores, DNF group semantics. */
    std::map<DocId, double>
    score(const engine::QueryPlan &plan)
    {
        // Terms contribute when at least one group containing them
        // fully matches the doc (mirrors the engine's clause rule).
        std::map<DocId, std::set<TermId>> matched;
        for (const auto &g : plan.groups) {
            std::map<DocId, std::size_t> counts;
            for (TermId t : g) {
                for (const auto &p : postings(t))
                    ++counts[p.doc];
            }
            for (const auto &[d, c] : counts) {
                if (c == g.size())
                    matched[d].insert(g.begin(), g.end());
            }
        }

        std::map<DocId, double> scores;
        for (const auto &[d, terms] : matched) {
            double s = 0.0;
            for (TermId t : terms)
                s += termScore(t, d);
            scores[d] = s;
        }
        return scores;
    }

  private:
    const index::PostingList &
    postings(TermId t)
    {
        auto it = cache_.find(t);
        if (it == cache_.end())
            it = cache_.emplace(t, corpus_.postings(t)).first;
        return it->second;
    }

    double
    termScore(TermId t, DocId d)
    {
        const auto &list = postings(t);
        auto it = std::lower_bound(
            list.begin(), list.end(), d,
            [](const index::Posting &p, DocId doc) {
                return p.doc < doc;
            });
        EXPECT_TRUE(it != list.end() && it->doc == d);

        const double k1 = 1.2;
        const double b = 0.75;
        double df = static_cast<double>(list.size());
        double idf =
            std::log((numDocs_ - df + 0.5) / (df + 0.5) + 1.0);
        double len =
            static_cast<double>(corpus_.docLengths()[d]);
        double norm = k1 * (1.0 - b + b * len / avgdl_);
        double tf = static_cast<double>(it->tf);
        return idf * tf * (k1 + 1.0) / (tf + norm);
    }

    const workload::Corpus &corpus_;
    double avgdl_ = 0.0;
    double numDocs_ = 0.0;
    std::map<TermId, index::PostingList> cache_;
};

void
runDifferential(const workload::CorpusConfig &cfg,
                std::uint64_t querySeed)
{
    workload::Corpus corpus(cfg);
    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    qcfg.seed = querySeed;
    auto queries =
        workload::sampleQueries(qcfg, kQueriesPerCorpus);
    auto index = corpus.buildIndex(workload::collectTerms(queries));
    ReferenceScorer reference(corpus);

    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        auto plan = engine::planQuery(queries[qi]);
        auto got = engine::executeQuery(index, plan, kTopK,
                                        engine::ExecFlags{});

        // (1) Engine == exhaustive oracle over the same stored
        // floats: exact, including rank order and tie-breaks.
        auto oracle = engine::naiveTopK(index, plan, kTopK);
        ASSERT_EQ(got, oracle) << cfg.name << " query " << qi;

        // (2) Engine vs the index-free double-precision reference.
        auto ref = reference.score(plan);
        ASSERT_EQ(got.size(), std::min(kTopK, ref.size()))
            << cfg.name << " query " << qi;

        double tol = 1e-4;
        for (std::size_t r = 0; r < got.size(); ++r) {
            if (r > 0) {
                // Rank order is monotone in score.
                ASSERT_LE(got[r].score, got[r - 1].score + 1e-9f);
            }
            auto it = ref.find(got[r].doc);
            ASSERT_TRUE(it != ref.end())
                << cfg.name << " query " << qi << ": doc "
                << got[r].doc << " is not a boolean match";
            double bound =
                tol * std::max(1.0, std::abs(it->second));
            ASSERT_NEAR(got[r].score, it->second, bound)
                << cfg.name << " query " << qi << " rank " << r;
        }

        // (3) Completeness at the cutoff: no skipped document may
        // beat the weakest returned score beyond float tolerance.
        if (got.size() == kTopK) {
            std::set<DocId> returned;
            for (const auto &r : got)
                returned.insert(r.doc);
            double cutoff =
                static_cast<double>(got.back().score);
            for (const auto &[d, s] : ref) {
                if (returned.count(d))
                    continue;
                double bound = tol * std::max(1.0, std::abs(s));
                ASSERT_LE(s, cutoff + bound)
                    << cfg.name << " query " << qi << ": doc " << d
                    << " outscores the returned cutoff";
            }
        }
    }
}

TEST(DifferentialTest, MidCorpus)
{
    workload::CorpusConfig cfg;
    cfg.name = "diff-mid";
    cfg.numDocs = 20'000;
    cfg.vocabSize = 400;
    cfg.seed = 1234;
    runDifferential(cfg, 11);
}

TEST(DifferentialTest, BurstyCorpus)
{
    workload::CorpusConfig cfg;
    cfg.name = "diff-bursty";
    cfg.numDocs = 30'000;
    cfg.vocabSize = 300;
    cfg.burstiness = 0.9;
    cfg.maxDfFraction = 0.2;
    cfg.seed = 99;
    runDifferential(cfg, 12);
}

TEST(DifferentialTest, SparseUniformCorpus)
{
    workload::CorpusConfig cfg;
    cfg.name = "diff-sparse";
    cfg.numDocs = 12'000;
    cfg.vocabSize = 600;
    cfg.burstiness = 0.0;
    cfg.maxDfFraction = 0.05;
    cfg.avgDocLen = 80;
    cfg.seed = 7;
    runDifferential(cfg, 13);
}

// The engine's ablation variants (exhaustive, block-only) must also
// match the oracle exactly: early termination is lossless.
TEST(DifferentialTest, AblationFlagsAreLossless)
{
    workload::CorpusConfig cfg;
    cfg.name = "diff-flags";
    cfg.numDocs = 10'000;
    cfg.vocabSize = 200;
    cfg.seed = 21;
    workload::Corpus corpus(cfg);
    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    qcfg.seed = 14;
    auto queries = workload::sampleQueries(qcfg, 40);
    auto index = corpus.buildIndex(workload::collectTerms(queries));

    engine::ExecFlags boss;
    engine::ExecFlags blockOnly;
    blockOnly.wandSkip = false;
    engine::ExecFlags exhaustive;
    exhaustive.blockSkip = false;
    exhaustive.wandSkip = false;

    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        auto plan = engine::planQuery(queries[qi]);
        auto oracle = engine::naiveTopK(index, plan, kTopK);
        EXPECT_EQ(engine::executeQuery(index, plan, kTopK, boss),
                  oracle);
        EXPECT_EQ(
            engine::executeQuery(index, plan, kTopK, blockOnly),
            oracle);
        EXPECT_EQ(
            engine::executeQuery(index, plan, kTopK, exhaustive),
            oracle);
    }
}

} // namespace
