/**
 * @file
 * Tests for the thread pool and the parallel batch execution paths.
 *
 * The determinism contract under test: every parallel path (trace
 * building, workload runs, device/API batches) produces output
 * bit-identical to the serial path at any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <numeric>
#include <set>

#include "api/offload.h"
#include "common/thread_pool.h"
#include "index/serialize.h"
#include "model/runner.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;

// ---------------------------------------------------------------
// ThreadPool unit tests.
// ---------------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryItemExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 8u}) {
        common::ThreadPool pool(threads);
        EXPECT_EQ(pool.size(), threads);
        for (std::size_t n : {0u, 1u, 7u, 256u}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1) << "item " << i;
        }
    }
}

TEST(ThreadPoolTest, SlotPlacementMatchesSerial)
{
    std::vector<int> serial(1000);
    for (std::size_t i = 0; i < serial.size(); ++i)
        serial[i] = static_cast<int>(i * i % 97);

    common::ThreadPool pool(8);
    std::vector<int> parallel(serial.size());
    pool.parallelFor(parallel.size(), [&](std::size_t i) {
        parallel[i] = static_cast<int>(i * i % 97);
    });
    EXPECT_EQ(parallel, serial);
}

TEST(ThreadPoolTest, WorkerIdsStayInRange)
{
    common::ThreadPool pool(4);
    std::vector<std::atomic<int>> perWorker(pool.size());
    pool.parallelFor(512, [&](std::size_t, std::size_t worker) {
        ASSERT_LT(worker, pool.size());
        ++perWorker[worker];
    });
    int total = 0;
    for (auto &c : perWorker)
        total += c.load();
    EXPECT_EQ(total, 512);
}

TEST(ThreadPoolTest, PropagatesExceptions)
{
    common::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](std::size_t i) {
                                      if (i == 13)
                                          throw std::runtime_error("13");
                                  }),
                 std::runtime_error);
    // The pool stays usable afterwards.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, NestedCallsRunInline)
{
    common::ThreadPool pool(4);
    std::atomic<int> inner{0};
    pool.parallelFor(16, [&](std::size_t) {
        // Must not deadlock waiting on the pool's own workers.
        pool.parallelFor(4, [&](std::size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPoolTest, PostedTasksRunExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 8u}) {
        common::ThreadPool pool(threads);
        const std::size_t n = 64;
        std::vector<std::atomic<int>> hits(n);
        std::atomic<std::size_t> done{0};
        std::mutex m;
        std::condition_variable cv;
        for (std::size_t i = 0; i < n; ++i) {
            pool.post([&, i](std::size_t worker) {
                EXPECT_LT(worker, pool.size());
                ++hits[i];
                if (++done == n) {
                    std::lock_guard<std::mutex> lock(m);
                    cv.notify_all();
                }
            });
        }
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return done.load() == n; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
}

TEST(ThreadPoolTest, PostedTasksOverlapWithParallelFor)
{
    common::ThreadPool pool(4);
    std::atomic<std::size_t> taskDone{0};
    std::mutex m;
    std::condition_variable cv;
    const std::size_t tasks = 16;
    for (std::size_t t = 0; t < tasks; ++t) {
        pool.post([&](std::size_t) {
            if (++taskDone == tasks) {
                std::lock_guard<std::mutex> lock(m);
                cv.notify_all();
            }
        });
    }
    // A job issued while tasks are queued must still complete.
    std::atomic<int> items{0};
    pool.parallelFor(64, [&](std::size_t) { ++items; });
    EXPECT_EQ(items.load(), 64);
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return taskDone.load() == tasks; });
    EXPECT_EQ(taskDone.load(), tasks);
}

TEST(ThreadPoolTest, GlobalPoolResizes)
{
    common::ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(common::ThreadPool::global().size(), 3u);
    common::ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(common::ThreadPool::global().size(), 1u);
}

// ---------------------------------------------------------------
// Parallel trace building and workload runs.
// ---------------------------------------------------------------

struct ParallelFixture : ::testing::Test
{
    static workload::Corpus &
    corpus()
    {
        static workload::Corpus c = [] {
            workload::CorpusConfig cfg;
            cfg.numDocs = 20000;
            cfg.vocabSize = 400;
            cfg.seed = 77;
            return workload::Corpus(cfg);
        }();
        return c;
    }

    static std::vector<workload::Query> &
    queries()
    {
        static std::vector<workload::Query> qs = [] {
            workload::QueryWorkloadConfig cfg;
            cfg.vocabSize = 400;
            cfg.queriesPerBucket = 12;
            cfg.seed = 5; // fixed: the comparison needs one workload
            return workload::makeWorkload(cfg);
        }();
        return qs;
    }

    static index::InvertedIndex &
    idx()
    {
        static index::InvertedIndex i =
            corpus().buildIndex(workload::collectTerms(queries()));
        return i;
    }

    static index::MemoryLayout &
    layout()
    {
        static index::MemoryLayout l(idx(), 0x10000, 256);
        return l;
    }

    void TearDown() override { common::ThreadPool::setGlobalThreads(1); }
};

/** Full structural equality of two traces (requests included). */
void
expectTraceEqual(const model::QueryTrace &a, const model::QueryTrace &b)
{
    EXPECT_EQ(a.resultStoreBytes, b.resultStoreBytes);
    EXPECT_EQ(a.numTerms, b.numTerms);
    EXPECT_EQ(a.evaluatedDocs, b.evaluatedDocs);
    EXPECT_EQ(a.skippedDocs, b.skippedDocs);
    EXPECT_EQ(a.blocksLoaded, b.blocksLoaded);
    EXPECT_EQ(a.blocksSkipped, b.blocksSkipped);
    EXPECT_EQ(a.catAccesses, b.catAccesses);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t s = 0; s < a.segments.size(); ++s) {
        const auto &sa = a.segments[s];
        const auto &sb = b.segments[s];
        EXPECT_EQ(sa.work.fetchBlocks, sb.work.fetchBlocks);
        EXPECT_EQ(sa.work.metaReads, sb.work.metaReads);
        EXPECT_EQ(sa.work.decodeVals, sb.work.decodeVals);
        EXPECT_EQ(sa.work.compares, sb.work.compares);
        EXPECT_EQ(sa.work.unionSteps, sb.work.unionSteps);
        EXPECT_EQ(sa.work.scoreDocs, sb.work.scoreDocs);
        EXPECT_EQ(sa.work.topkOps, sb.work.topkOps);
        ASSERT_EQ(sa.reqs.size(), sb.reqs.size());
        for (std::size_t r = 0; r < sa.reqs.size(); ++r) {
            EXPECT_EQ(sa.reqs[r].addr, sb.reqs[r].addr);
            EXPECT_EQ(sa.reqs[r].bytes, sb.reqs[r].bytes);
            EXPECT_EQ(sa.reqs[r].write, sb.reqs[r].write);
            EXPECT_EQ(sa.reqs[r].stream, sb.reqs[r].stream);
        }
    }
}

TEST_F(ParallelFixture, BuildTracesIdenticalAcrossThreadCounts)
{
    common::ThreadPool::setGlobalThreads(1);
    auto serial = model::buildTraces(idx(), layout(), queries(),
                                     model::SystemKind::Boss);
    for (std::size_t threads : {2u, 8u}) {
        common::ThreadPool::setGlobalThreads(threads);
        auto parallel = model::buildTraces(idx(), layout(), queries(),
                                           model::SystemKind::Boss);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectTraceEqual(parallel[i], serial[i]);
    }
}

TEST_F(ParallelFixture, RunWorkloadIdenticalAcrossThreadCounts)
{
    model::SystemConfig cfg;
    cfg.kind = model::SystemKind::Boss;

    common::ThreadPool::setGlobalThreads(1);
    auto serial = model::runWorkload(idx(), layout(), queries(), cfg);
    for (std::size_t threads : {2u, 8u}) {
        common::ThreadPool::setGlobalThreads(threads);
        auto parallel =
            model::runWorkload(idx(), layout(), queries(), cfg);
        // Replay consumes identical traces, so even the simulated
        // clock must agree to the bit.
        EXPECT_EQ(parallel.run.seconds, serial.run.seconds);
        EXPECT_EQ(parallel.run.deviceBytes, serial.run.deviceBytes);
        EXPECT_EQ(parallel.evaluatedDocs, serial.evaluatedDocs);
        EXPECT_EQ(parallel.skippedDocs, serial.skippedDocs);
        EXPECT_EQ(parallel.blocksLoaded, serial.blocksLoaded);
        EXPECT_EQ(parallel.blocksSkipped, serial.blocksSkipped);
        EXPECT_EQ(parallel.traceAccesses, serial.traceAccesses);
    }
}

TEST_F(ParallelFixture, DeviceBatchMatchesSequentialSearches)
{
    accel::Device dev;
    dev.loadIndex(corpus().buildIndex(
        workload::collectTerms(queries())));

    std::vector<workload::Query> batch(queries().begin(),
                                       queries().begin() + 10);

    // Sequential reference: one search() per query.
    std::vector<std::vector<engine::Result>> expected;
    for (const auto &q : batch)
        expected.push_back(dev.search(q).topk);

    for (std::size_t threads : {1u, 2u, 8u}) {
        common::ThreadPool::setGlobalThreads(threads);
        auto outcome = dev.searchBatch(batch);
        ASSERT_EQ(outcome.perQuery.size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            ASSERT_EQ(outcome.perQuery[i].size(), expected[i].size());
            for (std::size_t r = 0; r < expected[i].size(); ++r) {
                EXPECT_EQ(outcome.perQuery[i][r].doc,
                          expected[i][r].doc);
                EXPECT_EQ(outcome.perQuery[i][r].score,
                          expected[i][r].score);
            }
        }
        EXPECT_FALSE(outcome.topk.empty());
        EXPECT_EQ(outcome.topk.size(), outcome.perQuery.back().size());
    }
}

// ---------------------------------------------------------------
// api::searchBatch.
// ---------------------------------------------------------------

struct BatchApiFixture : ::testing::Test
{
    std::string indexPath;
    std::string configPath;

    void
    SetUp() override
    {
        indexPath = testing::TempDir() + "boss_batch_index.bin";
        configPath = testing::TempDir() + "boss_batch_config.txt";
        index::saveIndexFile(
            ParallelFixture::corpus().buildIndex(
                {0, 1, 2, 3, 10, 50, 399}),
            indexPath);
        {
            std::ofstream cfg(configPath);
            for (compress::Scheme s : compress::kAllSchemes)
                cfg << "[scheme " << schemeName(s) << "]\nbuiltin\n";
        }
        ASSERT_GT(api::init(indexPath, configPath), 0);
    }

    void
    TearDown() override
    {
        api::shutdown();
        common::ThreadPool::setGlobalThreads(1);
        std::remove(indexPath.c_str());
        std::remove(configPath.c_str());
    }
};

TEST_F(BatchApiFixture, BatchMatchesSerialSearch)
{
    std::vector<workload::Query> qs = {
        {workload::QueryType::Q1, {0}},
        {workload::QueryType::Q2, {1, 10}},
        {workload::QueryType::Q3, {2, 50}},
        {workload::QueryType::Q5, {0, 3, 10, 399}},
    };

    // Serial reference through the one-query intrinsic.
    std::vector<std::vector<api::ResultRecord>> serial;
    for (const auto &q : qs) {
        std::vector<api::ResultRecord> buf(64);
        auto args = api::makeArgs(q, buf.data(), 64);
        int n = api::search(args);
        ASSERT_GE(n, 0);
        buf.resize(static_cast<std::size_t>(n));
        serial.push_back(std::move(buf));
    }

    for (std::size_t threads : {1u, 2u, 8u}) {
        common::ThreadPool::setGlobalThreads(threads);
        std::vector<std::vector<api::ResultRecord>> buffers(
            qs.size(), std::vector<api::ResultRecord>(64));
        std::vector<api::SearchArgs> batch;
        for (std::size_t i = 0; i < qs.size(); ++i)
            batch.push_back(
                api::makeArgs(qs[i], buffers[i].data(), 64));

        auto counts = api::searchBatch(batch);
        ASSERT_EQ(counts.size(), qs.size());
        for (std::size_t i = 0; i < qs.size(); ++i) {
            ASSERT_EQ(counts[i],
                      static_cast<int>(serial[i].size()));
            for (std::size_t r = 0; r < serial[i].size(); ++r) {
                EXPECT_EQ(buffers[i][r].doc, serial[i][r].doc);
                EXPECT_EQ(buffers[i][r].score, serial[i][r].score);
            }
        }
    }
}

TEST_F(BatchApiFixture, InvalidQueriesDoNotPoisonBatch)
{
    workload::Query good{workload::QueryType::Q2, {1, 10}};
    std::vector<api::ResultRecord> goodBuf(32);
    std::vector<api::ResultRecord> badBuf(32);

    std::vector<api::SearchArgs> batch;
    batch.push_back(api::makeArgs(good, goodBuf.data(), 32));
    auto bad = api::makeArgs(good, badBuf.data(), 32);
    bad.listAddr[0] += 64; // address mismatch: validation must fail
    batch.push_back(bad);

    auto counts = api::searchBatch(batch);
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_GT(counts[0], 0);
    EXPECT_EQ(counts[1], -1);

    // The valid query's results match a standalone search().
    std::vector<api::ResultRecord> ref(32);
    auto refArgs = api::makeArgs(good, ref.data(), 32);
    int n = api::search(refArgs);
    ASSERT_EQ(counts[0], n);
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(goodBuf[static_cast<std::size_t>(i)].doc,
                  ref[static_cast<std::size_t>(i)].doc);
        EXPECT_EQ(goodBuf[static_cast<std::size_t>(i)].score,
                  ref[static_cast<std::size_t>(i)].score);
    }
}

TEST_F(BatchApiFixture, EmptyAndAllInvalidBatches)
{
    EXPECT_TRUE(api::searchBatch({}).empty());

    api::SearchArgs noBuffer;
    noBuffer.qExpression = "\"t0\"";
    noBuffer.nTerm = 1;
    auto counts = api::searchBatch({noBuffer});
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts[0], -1);
}

} // namespace
