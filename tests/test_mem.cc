/**
 * @file
 * Tests for the memory-system models: channel timing, sequential vs
 * random detection, host link serialization, category accounting and
 * the MAI TLB.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/banked_channel.h"
#include "mem/memory_system.h"
#include "mem/tlb.h"
#include "sim/event_queue.h"

namespace
{

using namespace boss;
using namespace boss::mem;

struct MemFixture : ::testing::Test
{
    sim::EventQueue eq;
    stats::Group root{"test"};
};

TEST_F(MemFixture, SequentialFasterThanRandom)
{
    // Large requests so service time dominates queueing overlap.
    const std::uint32_t size = 1 << 20;
    MemorySystem mem("scm", eq, root, scmConfig());

    // Warm up the stream, then continue sequentially.
    MemRequest warm{0, size, false, false, 0, 0, Category::LdList};
    Tick t0 = mem.access(warm);
    MemRequest seq{size, size, false, false, 0, 0, Category::LdList};
    Tick seqDone = mem.access(seq);

    // Same size, discontiguous address, forced random.
    MemRequest rand{8 * size, size, false, true, 0, 0, Category::LdList};
    Tick randDone = mem.access(rand);

    Tick seqTime = seqDone - t0;
    Tick randTime = randDone - seqDone;
    // 6.4 GB/s sequential vs 1.65 GB/s random: ~3.9x slower.
    EXPECT_LT(seqTime * 3, randTime);
    EXPECT_EQ(mem.sequentialAccesses(), 1u);
    EXPECT_EQ(mem.randomAccesses(), 2u);
}

TEST_F(MemFixture, StreamDetectionPerRequestor)
{
    MemorySystem mem("scm", eq, root, scmConfig());
    // Requestor 0 and 1 interleave on the same channel; each keeps
    // its own stream state, so both see sequential continuation.
    mem.access({0, 256, false, false, 0, 0, Category::LdList});
    mem.access({4096 * 0 + 0, 256, false, false, 1, 0, Category::LdList});
    mem.access({256, 256, false, false, 0, 0, Category::LdList});
    mem.access({256, 256, false, false, 1, 0, Category::LdList});
    EXPECT_EQ(mem.sequentialAccesses(), 2u);
}

TEST_F(MemFixture, WriteSlowerThanRead)
{
    MemorySystem mem("scm", eq, root, scmConfig());
    Tick r = mem.access({0, 4096, false, false, 0, 0, Category::LdList});
    Tick w0 = eq.now();
    Tick w = mem.access({1u << 20, 4096, true, false, 0, 0,
                         Category::StInter});
    // Write bandwidth (2.3 GB/s aggregate) is far below read.
    EXPECT_GT(w - w0, r);
    EXPECT_EQ(mem.categoryBytes(Category::StInter), 4096u);
}

TEST_F(MemFixture, ChannelsServeInParallel)
{
    // A striped large request finishes ~4x faster on 4 channels
    // than on a single-channel device with the same per-channel BW.
    MemConfig four = scmConfig();
    MemConfig one = scmConfig();
    one.channels = 1;
    MemorySystem memFour("scm4", eq, root, four);
    MemorySystem memOne("scm1", eq, root, one);
    Tick t4 = memFour.access({0, 1 << 20, false, false, 0, 0,
                              Category::LdList});
    Tick t1 = memOne.access({0, 1 << 20, false, false, 0, 0,
                             Category::LdList});
    EXPECT_LT(t4 * 3, t1);
}

TEST_F(MemFixture, BackToBackRequestsSerialize)
{
    MemorySystem mem("scm", eq, root, scmConfig());
    Tick a = mem.access({0, 1 << 20, false, false, 0, 0,
                         Category::LdList});
    Tick b = mem.access({1 << 20, 1 << 20, false, false, 0, 0,
                         Category::LdList});
    // The second request queues behind the first on every channel
    // (it runs at the faster sequential rate, but cannot overlap).
    EXPECT_GT(b, a);
}

TEST_F(MemFixture, GranuleRounding)
{
    // Two fresh devices: a 1-byte random read costs exactly as much
    // as a full 64 B bus-transfer unit.
    MemorySystem memA("scmA", eq, root, scmConfig());
    MemorySystem memB("scmB", eq, root, scmConfig());
    Tick t1 = memA.access({0, 1, false, true, 0, 0, Category::LdScore});
    Tick t64 = memB.access({0, 64, false, true, 0, 0,
                            Category::LdScore});
    EXPECT_EQ(t1, t64);
}

TEST_F(MemFixture, CategoryAccounting)
{
    MemorySystem mem("scm", eq, root, scmConfig());
    mem.access({0, 100, false, false, 0, 0, Category::LdList});
    mem.access({4096, 200, false, false, 0, 0, Category::LdScore});
    mem.access({8192, 300, true, false, 0, 0, Category::StResult});
    EXPECT_EQ(mem.categoryBytes(Category::LdList), 100u);
    EXPECT_EQ(mem.categoryBytes(Category::LdScore), 200u);
    EXPECT_EQ(mem.categoryBytes(Category::StResult), 300u);
    EXPECT_EQ(mem.totalBytes(), 600u);
    EXPECT_EQ(mem.categoryAccesses(Category::LdList), 1u);
}

TEST_F(MemFixture, CallbackFiresAtCompletion)
{
    MemorySystem mem("scm", eq, root, scmConfig());
    bool fired = false;
    Tick done = mem.access({0, 256, false, false, 0, 0, Category::LdList},
                           [&] { fired = true; });
    EXPECT_FALSE(fired);
    eq.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.now(), done);
}

TEST_F(MemFixture, DramFasterThanScm)
{
    MemorySystem scm("scm", eq, root, scmConfig());
    MemorySystem dram("dram", eq, root, dramConfig());
    Tick s = scm.access({0, 65536, false, false, 0, 0, Category::LdList});
    Tick snap = eq.now();
    Tick d = dram.access({0, 65536, false, false, 0, 0,
                          Category::LdList});
    EXPECT_LT(d - snap, s - 0);
}

TEST_F(MemFixture, HostLinkSerializesAndCharges)
{
    LinkConfig cfg;
    HostLink link("link", eq, root, cfg);
    Tick a = link.transfer(0, 64'000'000); // 64 MB at 64 GB/s = 1 ms
    EXPECT_NEAR(static_cast<double>(a), 1e9 + cfg.latency, 1e6);
    // Second transfer queues behind the first.
    Tick b = link.transfer(0, 64'000'000);
    EXPECT_GE(b, a + 1e9 - 1e6);
    EXPECT_EQ(link.bytesTransferred(), 128'000'000u);
}

TEST_F(MemFixture, HostSideTrafficCrossesLink)
{
    LinkConfig lcfg;
    HostLink link("link", eq, root, lcfg);
    MemorySystem direct("direct", eq, root, scmConfig());
    MemorySystem hosted("hosted", eq, root, scmConfig(), &link);
    Tick d = direct.access({0, 256, false, false, 0, 0,
                            Category::LdList});
    Tick snap = eq.now();
    Tick h = hosted.access({0, 256, false, false, 0, 0,
                            Category::LdList});
    // The hosted path pays at least the link latency extra.
    EXPECT_GE((h - snap) - d, lcfg.latency);
    EXPECT_GT(link.bytesTransferred(), 0u);
}

// ---------------------------------------------------------------
// TLB.
// ---------------------------------------------------------------

TEST(TlbTest, HugePagesNeverMissInRange)
{
    mem::Tlb tlb(1024, 31); // 1K entries x 2GB pages = 2TB
    // First touch of each page misses; everything after hits.
    for (int i = 0; i < 1000; ++i)
        tlb.translate(static_cast<Addr>(i) * (1ull << 31));
    EXPECT_EQ(tlb.misses(), 1000u);
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 1000; ++i)
            tlb.translate(static_cast<Addr>(i) * (1ull << 31) + 42);
    }
    EXPECT_EQ(tlb.misses(), 1000u);
    EXPECT_EQ(tlb.hits(), 3000u);
}

TEST(TlbTest, LruEviction)
{
    mem::Tlb tlb(2, 12); // 2 entries, 4KB pages
    tlb.translate(0x0000);
    tlb.translate(0x1000);
    tlb.translate(0x0000); // refresh page 0
    tlb.translate(0x2000); // evicts page 1 (LRU)
    EXPECT_TRUE(tlb.translate(0x0000));
    EXPECT_FALSE(tlb.translate(0x1000)); // was evicted
}

} // namespace

// ---------------------------------------------------------------
// Bank-level channel model (the DRAMSim2 role).
// ---------------------------------------------------------------

TEST(BankedChannel, RowHitFasterThanMiss)
{
    BankedChannel ch(ddr4BankTiming());
    BankTiming t = ddr4BankTiming();
    Tick firstDone = ch.access(0, 0, false); // cold: row miss
    EXPECT_EQ(ch.rowMisses(), 1u);
    Tick hitDone = ch.access(firstDone, 64, false); // same row
    EXPECT_EQ(ch.rowHits(), 1u);
    // Hit pays tCL + tBL; the cold miss paid tRCD + tCL + tBL.
    EXPECT_EQ(hitDone - firstDone, t.tCL + t.tBL);
    EXPECT_EQ(firstDone, t.tRCD + t.tCL + t.tBL);
}

TEST(BankedChannel, RowConflictPaysPrecharge)
{
    BankTiming t = ddr4BankTiming();
    BankedChannel ch(t);
    Tick first = ch.access(0, 0, false);
    // Same bank, different row: banks stride by rowBytes, so row n
    // and row n + banks live in the same bank.
    Addr conflict = static_cast<Addr>(t.rowBytes) * t.banks;
    Tick second = ch.access(first, conflict, false);
    EXPECT_EQ(second - first, t.tRP + t.tRCD + t.tCL + t.tBL);
    EXPECT_EQ(ch.rowMisses(), 2u);
}

TEST(BankedChannel, BanksOverlapActivation)
{
    BankTiming t = ddr4BankTiming();
    BankedChannel ch(t);
    // Two accesses to different banks issued at time 0: their
    // activations overlap; only the bus serializes.
    Tick a = ch.access(0, 0, false);
    Tick b = ch.access(0, t.rowBytes, false); // next bank
    EXPECT_EQ(a, t.tRCD + t.tCL + t.tBL);
    EXPECT_EQ(b, a + t.tBL); // bus-limited, not activation-limited
}

TEST(BankedChannel, StreamingApproachesPeakBandwidth)
{
    BankTiming t = ddr4BankTiming();
    BankedChannel ch(t);
    // Stream 1 MB sequentially, issuing eagerly: the bus (tBL per
    // 64B burst) is the limit -> ~21.3 GB/s.
    Tick done = 0;
    const std::uint64_t bytes = 1 << 20;
    for (Addr a = 0; a < bytes; a += 64)
        done = std::max(done, ch.access(0, a, false));
    double gbps = static_cast<double>(bytes) /
                  static_cast<double>(done) * 1000.0;
    EXPECT_GT(gbps, 18.0);
    EXPECT_LT(gbps, 22.0);
}

TEST(BankedMemorySystem, IntegratesWithAccessPath)
{
    sim::EventQueue eq;
    stats::Group root{"t"};
    MemorySystem mem("dramb", eq, root, dramBankedConfig());
    Tick seq = mem.access({0, 4096, false, false, 0, 0,
                           Category::LdList});
    EXPECT_GT(seq, 0u);
    EXPECT_GT(mem.rowHits() + mem.rowMisses(), 0u);
    // Sequential streaming is row-hit dominated.
    for (Addr a = 4096; a < (1u << 20); a += 4096)
        mem.access({a, 4096, false, false, 0, 0, Category::LdList});
    EXPECT_GT(mem.rowHits(), mem.rowMisses() * 4);
}

TEST(BankedMemorySystem, RandomAccessMostlyMisses)
{
    sim::EventQueue eq;
    stats::Group root{"t"};
    MemorySystem mem("dramb", eq, root, dramBankedConfig());
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        Addr a = (rng.below(1u << 24)) & ~63ull;
        mem.access({a, 64, false, true, 0, 0, Category::LdScore});
    }
    EXPECT_GT(mem.rowMisses(), mem.rowHits());
}
