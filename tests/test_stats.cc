/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.h"

namespace
{

using namespace boss::stats;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Scalar, AccumulateAndSet)
{
    Scalar s;
    s += 1.5;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.set(7.0);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
}

TEST(HistogramTest, BucketsAndMoments)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(5.5);
    h.sample(9.5);
    h.sample(100.0); // overflow bucket
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_NEAR(h.mean(), (0.5 + 5.5 + 9.5 + 100.0) / 4.0, 1e-12);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[5], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.buckets()[10], 1u); // overflow
}

TEST(HistogramTest, WeightedSamples)
{
    Histogram h(0.0, 4.0, 4);
    h.sample(1.0, 10);
    EXPECT_EQ(h.samples(), 10u);
    EXPECT_EQ(h.buckets()[1], 10u);
}

TEST(GroupTest, PathLookup)
{
    Group root("sim");
    Counter hits;
    hits += 99;
    root.subgroup("core0").subgroup("cache").addCounter("hits", &hits);
    EXPECT_EQ(root.counterValue("core0.cache.hits"), 99u);
    EXPECT_EQ(root.counterValue("core0.cache.misses"), 0u);
    EXPECT_EQ(root.counterValue("nope.hits"), 0u);
}

TEST(GroupTest, FormulaEvaluatesOnDemand)
{
    Group root("sim");
    Counter n;
    root.addCounter("n", &n);
    root.addFormula("n_squared", [&n]() {
        return static_cast<double>(n.value() * n.value());
    });
    n += 4;
    EXPECT_DOUBLE_EQ(root.scalarValue("n_squared"), 16.0);
    n += 1;
    EXPECT_DOUBLE_EQ(root.scalarValue("n_squared"), 25.0);
}

TEST(GroupTest, ScalarValueFallsBackToCounter)
{
    Group root("sim");
    Counter c;
    c += 5;
    root.addCounter("c", &c);
    EXPECT_DOUBLE_EQ(root.scalarValue("c"), 5.0);
}

TEST(GroupTest, DumpContainsPathsAndDescs)
{
    Group root("run");
    Counter reqs;
    reqs += 3;
    root.subgroup("mem").addCounter("requests", &reqs,
                                    "total memory requests");
    std::ostringstream oss;
    root.dump(oss);
    std::string text = oss.str();
    EXPECT_NE(text.find("run.mem.requests"), std::string::npos);
    EXPECT_NE(text.find("3"), std::string::npos);
    EXPECT_NE(text.find("total memory requests"), std::string::npos);
}

TEST(GroupTest, SubgroupIsIdempotent)
{
    Group root("x");
    Group &a = root.subgroup("child");
    Group &b = root.subgroup("child");
    EXPECT_EQ(&a, &b);
}

TEST(GroupTest, DumpJsonGolden)
{
    Group root("run");
    Counter hits;
    hits += 3;
    root.addCounter("hits", &hits, "d");
    std::ostringstream oss;
    root.dumpJson(oss);
    EXPECT_EQ(oss.str(),
              "{\n"
              "  \"name\": \"run\",\n"
              "  \"stats\": {\n"
              "    \"hits\": {\"type\": \"counter\", \"value\": 3, "
              "\"desc\": \"d\"}\n"
              "  },\n"
              "  \"groups\": []\n"
              "}");
}

TEST(GroupTest, DumpJsonHistogramShape)
{
    Group root("run");
    Histogram h(0.0, 4.0, 4);
    h.sample(1.0);
    h.sample(9.0); // overflow
    root.addHistogram("lat", &h);
    std::ostringstream oss;
    root.dumpJson(oss);
    std::string json = oss.str();
    EXPECT_NE(json.find("\"type\": \"histogram\""),
              std::string::npos);
    EXPECT_NE(json.find("\"samples\": 2"), std::string::npos);
    // Four regular buckets plus the trailing overflow bucket.
    EXPECT_NE(json.find("\"buckets\": [0, 1, 0, 0, 1]"),
              std::string::npos);
}

TEST(HistogramTest, LogBucketsCoverDecadesEvenly)
{
    // 3 decades, one bucket per decade.
    Histogram h(1.0, 1000.0, 3, Scale::Log);
    h.sample(5.0);    // [1, 10)
    h.sample(50.0);   // [10, 100)
    h.sample(500.0);  // [100, 1000)
    h.sample(0.5);    // below lo -> bucket 0
    h.sample(2000.0); // overflow
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 1u); // overflow
    EXPECT_EQ(h.scale(), Scale::Log);
}

TEST(HistogramTest, PercentileInterpolatesAndClamps)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 1; i <= 100; ++i)
        h.sample(static_cast<double>(i) - 0.5); // one per bucket
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);    // clamped to min
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 99.5);   // clamped to max
    EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
}

TEST(HistogramTest, LogPercentileResolvesMicrosecondTail)
{
    // Latency-like distribution over 6 decades: p999 must land in
    // the sparse tail despite 99.9% of mass sitting 1000x lower.
    Histogram h(1.0, 1e6, 96, Scale::Log);
    h.sample(100.0, 9980);  // bulk at ~100us
    h.sample(1e5, 20);      // 0.2% tail at ~100ms
    double p50 = h.percentile(0.50);
    double p999 = h.percentile(0.999);
    EXPECT_GT(p50, 50.0);
    EXPECT_LT(p50, 200.0);
    EXPECT_GE(p999, 5e4);
    EXPECT_LE(p999, 2e5);
}

TEST(HistogramTest, PercentileWithNoSamplesIsZero)
{
    Histogram h(1.0, 1000.0, 10, Scale::Log);
    EXPECT_DOUBLE_EQ(h.percentile(0.999), 0.0);
}

TEST(HistogramTest, OverflowPercentileReportsObservedMax)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(500.0);
    h.sample(700.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 700.0);
}

TEST(HistogramTest, PercentileClampsOutOfRangeQuantiles)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 1; i <= 10; ++i)
        h.sample(static_cast<double>(i) * 10.0 - 5.0);
    // Quantiles outside [0, 1] clamp to the endpoints rather than
    // extrapolating past the observed range.
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.min());
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.max());
}

TEST(HistogramTest, SingleSampleAnswersEveryQuantile)
{
    Histogram h(0.0, 100.0, 10);
    h.sample(42.0);
    // One sample pins min == max, so interpolation clamps every
    // quantile to exactly that value.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
}

TEST(HistogramTest, BelowRangeSampleClampsToObservedMin)
{
    // A sample below lo lands in bucket 0, whose lower edge (lo)
    // exceeds the observed value; the [min, max] clamp keeps the
    // quantile honest.
    Histogram h(10.0, 100.0, 9);
    h.sample(2.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(h.min(), 2.0);
}

TEST(HistogramTest, PercentilesAreMonotoneInQ)
{
    Histogram h(1.0, 1e6, 48, Scale::Log);
    h.sample(10.0, 500);
    h.sample(1000.0, 90);
    h.sample(2e6, 10); // overflow tail
    double prev = h.percentile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        double cur = h.percentile(q);
        EXPECT_GE(cur, prev) << "non-monotone at q=" << q;
        prev = cur;
    }
}

TEST(HistogramTest, ResetClearsPercentileState)
{
    Histogram h(0.0, 100.0, 10);
    h.sample(50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(GroupTest, DumpJsonCarriesPercentilesAndScale)
{
    Group root("run");
    Histogram lin(0.0, 4.0, 4);
    Histogram log(1.0, 1e6, 24, Scale::Log);
    lin.sample(1.0);
    log.sample(10.0);
    root.addHistogram("lat_lin", &lin);
    root.addHistogram("lat_log", &log);
    std::ostringstream oss;
    root.dumpJson(oss);
    std::string json = oss.str();
    EXPECT_NE(json.find("\"scale\": \"linear\""), std::string::npos);
    EXPECT_NE(json.find("\"scale\": \"log\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\": "), std::string::npos);
    EXPECT_NE(json.find("\"p99\": "), std::string::npos);
    EXPECT_NE(json.find("\"p999\": "), std::string::npos);
}

TEST(GroupTest, OutputFollowsRegistrationOrder)
{
    Group root("run");
    Counter z, a;
    root.subgroup("zeta").addCounter("n", &z);
    root.subgroup("alpha").addCounter("n", &a);

    std::ostringstream text;
    root.dump(text);
    EXPECT_LT(text.str().find("run.zeta.n"),
              text.str().find("run.alpha.n"));

    std::ostringstream json;
    root.dumpJson(json);
    EXPECT_LT(json.str().find("\"zeta\""),
              json.str().find("\"alpha\""));
}

} // namespace
