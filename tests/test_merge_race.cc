/**
 * @file
 * Concurrency hammer for the live index: searchers, a writer and
 * the background merger all share one SegmentMap while epochs
 * churn. Built into the CI ThreadSanitizer matrix — the point is
 * the interleavings, not the assertions alone.
 *
 * Invariants checked while the hammer runs:
 *   - every snapshot is internally consistent (per-reader liveDocs
 *     sum to the version's, results reference docs below the
 *     global id watermark, epochs observed by one searcher never
 *     go backwards);
 *   - queries pinned to an old epoch keep working after merges
 *     retire its segments (refcounts keep them alive);
 *   - after quiescing, every retired version drains to zero pins
 *     and the final accounting matches the writer's ledger.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/segment_search.h"
#include "index/segments/live_index.h"

namespace
{

using namespace boss;
using index::segments::LiveIndex;
using index::segments::LiveIndexConfig;

constexpr std::uint32_t kVocab = 32;
constexpr std::size_t kTopK = 20;

engine::QueryPlan
probePlan(std::uint64_t pick)
{
    engine::QueryPlan p;
    switch (pick % 3) {
    case 0:
        p.groups = {{TermId(pick % kVocab)}};
        break;
    case 1: // union
        p.groups = {{TermId(pick % kVocab)},
                    {TermId((pick / 3) % kVocab)}};
        break;
    default: // intersection
        p.groups = {{TermId(pick % kVocab),
                     TermId((pick / 5) % kVocab)}};
        break;
    }
    for (const auto &g : p.groups)
        for (TermId t : g)
            p.allTerms.push_back(t);
    return p;
}

TEST(MergeRace, SearchAppendMergeHammer)
{
    LiveIndexConfig cfg;
    cfg.termBoundHint = kVocab;
    cfg.maxBufferedDocs = 16; // bake often
    cfg.maxSegments = 3;      // merge often
    cfg.mergeFanIn = 3;
    cfg.mergerPollMs = 1;
    LiveIndex live(cfg);

    // Seed a few segments so searchers have work immediately.
    {
        Rng rng(1);
        for (int d = 0; d < 64; ++d) {
            std::vector<TermId> tokens;
            for (int i = 0; i < 6; ++i)
                tokens.push_back(TermId(rng.below(kVocab)));
            live.append(tokens);
        }
        live.refresh();
    }

    live.startMerger();

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> appends{0};
    std::atomic<std::uint64_t> erases{0};
    std::atomic<std::uint64_t> searches{0};
    std::atomic<std::uint64_t> failures{0};

    auto searcher = [&](std::uint64_t seed) {
        Rng rng(splitSeed(seed, 42));
        std::uint64_t lastEpoch = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            auto snap = live.snapshot();
            if (!snap) {
                failures.fetch_add(1);
                continue;
            }
            // Epochs move forward only.
            if (snap->epoch() < lastEpoch)
                failures.fetch_add(1);
            lastEpoch = snap->epoch();

            // Per-reader accounting sums to the version total.
            std::uint32_t sum = 0;
            for (const auto &r : snap->segments())
                sum += r.liveDocs;
            if (sum != snap->liveDocs())
                failures.fetch_add(1);

            const auto plan = probePlan(rng.next());
            const auto res = engine::searchSegments(
                *snap, plan, kTopK, {});
            // The watermark only grows, so any result doc must sit
            // below it even when read after the search.
            const DocId watermark = live.nextGlobalId();
            for (const auto &r : res) {
                if (r.doc >= watermark)
                    failures.fetch_add(1);
                if (!(r.score > 0.0f))
                    failures.fetch_add(1);
            }
            searches.fetch_add(1);
        }
    };

    auto writer = [&] {
        Rng rng(7);
        while (!stop.load(std::memory_order_relaxed)) {
            std::vector<TermId> tokens;
            const auto len = 4 + rng.below(8);
            for (std::uint64_t i = 0; i < len; ++i)
                tokens.push_back(TermId(rng.below(kVocab)));
            live.append(tokens);
            appends.fetch_add(1);
            if (rng.below(4) == 0) {
                const DocId watermark = live.nextGlobalId();
                if (watermark > 0 &&
                    live.erase(DocId(rng.below(watermark))))
                    erases.fetch_add(1);
            }
            if (rng.below(16) == 0)
                live.refresh();
        }
    };

    // A long-lived pin: grab one snapshot up front and query it
    // throughout; merges must not invalidate it.
    auto pinned = live.snapshot();
    const auto pinnedEpoch = pinned->epoch();
    const auto pinnedBaseline =
        engine::searchSegments(*pinned, probePlan(3), kTopK, {});

    std::vector<std::thread> threads;
    threads.emplace_back(searcher, 1);
    threads.emplace_back(searcher, 2);
    threads.emplace_back(writer);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(1500);
    while (std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    stop.store(true);
    for (auto &t : threads)
        t.join();
    live.stopMerger();
    live.refresh();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_GT(searches.load(), 0u);
    EXPECT_GT(appends.load(), 0u);
    EXPECT_GT(live.counters().merges.load(), 0u)
        << "hammer never merged; raise the duration";

    // The pinned epoch survived every merge with identical results.
    EXPECT_EQ(pinned->epoch(), pinnedEpoch);
    EXPECT_EQ(engine::searchSegments(*pinned, probePlan(3), kTopK,
                                     {}),
              pinnedBaseline);

    // Ledger: every appended doc is live unless we erased it.
    EXPECT_EQ(live.liveDocs(),
              64 + appends.load() - erases.load());
    EXPECT_EQ(live.counters().appended.load(),
              64 + appends.load());
    EXPECT_EQ(live.counters().erased.load(), erases.load());

    // Quiesce: the pinned (long-retired) epoch is the only thing
    // keeping an old version alive; once the pin drops, every
    // retired version drains. Nothing leaks.
    EXPECT_EQ(live.map().drainRetired(), 1u);
    pinned = {};
    EXPECT_EQ(live.map().drainRetired(), 0u);
    EXPECT_EQ(live.snapshot()->pins(), 1u);
}

TEST(MergeRace, DeletesDuringMergeCarryOver)
{
    // Single-threaded but timing-shaped: interleave erase() with
    // the merger thread's window by running many short rounds.
    LiveIndexConfig cfg;
    cfg.termBoundHint = kVocab;
    cfg.maxBufferedDocs = 8;
    cfg.maxSegments = 2;
    cfg.mergeFanIn = 2;
    cfg.mergerPollMs = 0;
    LiveIndex live(cfg);
    live.startMerger();

    Rng rng(11);
    std::uint64_t appended = 0, erased = 0;
    for (int round = 0; round < 200; ++round) {
        std::vector<DocId> mine;
        for (int d = 0; d < 12; ++d) {
            mine.push_back(live.append(
                {TermId(rng.below(kVocab)),
                 TermId(rng.below(kVocab)),
                 TermId(rng.below(kVocab))}));
            ++appended;
        }
        // Erase while merges are racing in the background.
        for (DocId id : mine) {
            if (rng.below(2) == 0 && live.erase(id))
                ++erased;
        }
        if (round % 8 == 0)
            live.refresh();
    }
    live.stopMerger();
    live.refresh();

    EXPECT_EQ(live.liveDocs(), appended - erased);
    EXPECT_GT(live.counters().merges.load(), 0u);

    // Erased docs never come back: all survivors are queryable,
    // and the per-reader tombstone accounting is exact.
    auto snap = live.snapshot();
    std::uint32_t sum = 0;
    for (const auto &r : snap->segments())
        sum += r.liveDocs;
    EXPECT_EQ(sum, snap->liveDocs());
    EXPECT_EQ(snap->liveDocs(), appended - erased);
    // `snap` pins the *current* epoch; every retired one is gone.
    EXPECT_EQ(live.map().drainRetired(), 0u);
}

} // namespace
