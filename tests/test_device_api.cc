/**
 * @file
 * Tests for the Device facade, the offloading API intrinsics, and
 * the power/energy model.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "api/offload.h"
#include "boss/topk_queue.h"
#include "common/rng.h"
#include "compress/datapath.h"
#include "engine/execute.h"
#include "engine/plan.h"
#include "index/serialize.h"
#include "power/power.h"
#include "workload/corpus.h"

namespace
{

using namespace boss;

workload::Corpus &
corpus()
{
    static workload::Corpus c = [] {
        workload::CorpusConfig cfg;
        cfg.numDocs = 20000;
        cfg.vocabSize = 500;
        cfg.seed = 31;
        return workload::Corpus(cfg);
    }();
    return c;
}

index::InvertedIndex
freshIndex()
{
    return corpus().buildIndex({0, 1, 2, 3, 10, 50, 499});
}

// ---------------------------------------------------------------
// Device facade.
// ---------------------------------------------------------------

TEST(DeviceTest, SearchMatchesFunctionalOracle)
{
    accel::Device dev;
    dev.loadIndex(freshIndex());

    auto outcome = dev.search("\"t0\" AND \"t10\"");
    auto plan = engine::planQuery(engine::parseExpression(
        "\"t0\" AND \"t10\"", engine::defaultTermResolver));
    auto oracle =
        engine::naiveTopK(dev.index(), plan, engine::kDefaultTopK);

    ASSERT_EQ(outcome.topk.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(outcome.topk[i].doc, oracle[i].doc);
        EXPECT_FLOAT_EQ(outcome.topk[i].score, oracle[i].score);
    }
    EXPECT_GT(outcome.simSeconds, 0.0);
    EXPECT_GT(outcome.deviceBytes, 0u);
}

TEST(DeviceTest, AccumulatesTotals)
{
    accel::Device dev;
    dev.loadIndex(freshIndex());
    dev.search("\"t0\"");
    double after1 = dev.totalSimSeconds();
    dev.search("\"t1\"");
    EXPECT_GT(dev.totalSimSeconds(), after1);
    EXPECT_EQ(dev.totalQueries(), 2u);
}

TEST(DeviceTest, BatchUsesMultipleCores)
{
    accel::DeviceConfig oneCore;
    oneCore.cores = 1;
    accel::Device dev1(oneCore);
    accel::Device dev8;
    dev1.loadIndex(freshIndex());
    dev8.loadIndex(freshIndex());

    std::vector<workload::Query> batch;
    for (TermId t : {0u, 1u, 2u, 3u, 10u, 50u})
        batch.push_back({workload::QueryType::Q1, {t}});

    double t1 = dev1.searchBatch(batch).simSeconds;
    double t8 = dev8.searchBatch(batch).simSeconds;
    EXPECT_LT(t8, t1);
}

TEST(DeviceTest, AblationKindsDiffer)
{
    accel::DeviceConfig cfg;
    cfg.kind = model::SystemKind::BossExhaustive;
    cfg.k = 10; // small k so early termination has room to prune
    accel::Device exhaustive(cfg);
    cfg.kind = model::SystemKind::Boss;
    accel::Device full(cfg);
    exhaustive.loadIndex(freshIndex());
    full.loadIndex(freshIndex());
    auto e = exhaustive.search("\"t0\" OR \"t1\"");
    auto f = full.search("\"t0\" OR \"t1\"");
    EXPECT_GT(e.evaluatedDocs, f.evaluatedDocs);
    // Same results either way.
    ASSERT_EQ(e.topk.size(), f.topk.size());
    for (std::size_t i = 0; i < e.topk.size(); ++i)
        EXPECT_EQ(e.topk[i].doc, f.topk[i].doc);
}

// ---------------------------------------------------------------
// Offloading API.
// ---------------------------------------------------------------

struct ApiFixture : ::testing::Test
{
    std::string indexPath;
    std::string configPath;

    void
    SetUp() override
    {
        indexPath = testing::TempDir() + "boss_api_index.bin";
        configPath = testing::TempDir() + "boss_api_config.txt";
        index::saveIndexFile(freshIndex(), indexPath);
        std::ofstream cfg(configPath);
        for (compress::Scheme s : compress::kAllSchemes)
            cfg << "[scheme " << schemeName(s) << "]\nbuiltin\n";
    }

    void
    TearDown() override
    {
        api::shutdown();
        std::remove(indexPath.c_str());
        std::remove(configPath.c_str());
    }
};

TEST_F(ApiFixture, InitAndSearch)
{
    EXPECT_EQ(api::init(indexPath, configPath),
              static_cast<int>(compress::kAllSchemes.size()));
    EXPECT_TRUE(api::initialized());

    workload::Query q{workload::QueryType::Q2, {0, 10}};
    std::vector<api::ResultRecord> buffer(64);
    api::SearchArgs args = api::makeArgs(
        q, buffer.data(), static_cast<std::uint32_t>(buffer.size()));
    int n = api::search(args);
    ASSERT_GT(n, 0);
    ASSERT_LE(n, 64);

    auto oracle = engine::naiveTopK(api::device().index(),
                                    engine::planQuery(q), 64);
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(buffer[i].doc, oracle[i].doc);
        EXPECT_FLOAT_EQ(buffer[i].score, oracle[i].score);
    }
}

TEST_F(ApiFixture, ResultBufferCapacityRespected)
{
    api::init(indexPath, configPath);
    workload::Query q{workload::QueryType::Q1, {0}};
    std::vector<api::ResultRecord> buffer(5);
    auto args = api::makeArgs(q, buffer.data(), 5);
    EXPECT_EQ(api::search(args), 5);
}

TEST_F(ApiFixture, ValidationFailures)
{
    api::init(indexPath, configPath);
    workload::Query q{workload::QueryType::Q2, {0, 10}};
    std::vector<api::ResultRecord> buffer(16);
    auto good = api::makeArgs(q, buffer.data(), 16);

    auto badTermCount = good;
    badTermCount.nTerm = 3;
    EXPECT_EQ(api::search(badTermCount), -1);

    auto badAddr = good;
    badAddr.listAddr[0] += 64;
    EXPECT_EQ(api::search(badAddr), -1);

    auto badScheme = good;
    badScheme.compType[0] = static_cast<compress::Scheme>(
        (static_cast<int>(badScheme.compType[0]) + 1) % 6);
    EXPECT_EQ(api::search(badScheme), -1);

    auto noBuffer = good;
    noBuffer.resultAddr = nullptr;
    EXPECT_EQ(api::search(noBuffer), -1);
}

TEST_F(ApiFixture, SearchBeforeInitFails)
{
    api::shutdown();
    api::SearchArgs args;
    args.qExpression = "\"t0\"";
    args.nTerm = 1;
    api::ResultRecord r;
    args.resultAddr = &r;
    args.resultSize = 1;
    EXPECT_EQ(api::search(args), -1);
}

TEST_F(ApiFixture, CustomProgramInConfig)
{
    // A config file that programs VB with an explicit (equivalent)
    // datapath rather than "builtin".
    std::ofstream cfg(configPath);
    for (compress::Scheme s : compress::kAllSchemes) {
        if (s == compress::Scheme::VB)
            continue;
        cfg << "[scheme " << schemeName(s) << "]\nbuiltin\n";
    }
    cfg << "[scheme VB]\n"
        << compress::builtinConfigText(compress::Scheme::VB);
    cfg.close();
    EXPECT_EQ(api::init(indexPath, configPath), 6);
}

// ---------------------------------------------------------------
// Power model.
// ---------------------------------------------------------------

TEST(PowerTest, TableIIITotals)
{
    // Totals reproduce the paper's Table III within rounding.
    EXPECT_NEAR(power::bossCoreAreaMm2(), 1.003, 0.01);
    EXPECT_NEAR(power::bossCorePowerMw(), 406.6, 1.0);
    EXPECT_NEAR(power::bossDeviceAreaMm2(), 8.27, 0.05);
    EXPECT_NEAR(power::bossDevicePowerW(), 3.2, 0.1);
}

TEST(PowerTest, CpuVsBossPowerRatio)
{
    double ratio = power::kCpuPackagePowerW /
                   power::systemPowerW(model::SystemKind::Boss, 8);
    // Paper: BOSS consumes 23.3x less power than the host CPU.
    EXPECT_NEAR(ratio, 23.3, 1.0);
}

TEST(PowerTest, EnergyScalesWithTime)
{
    double e1 = power::energyJoules(model::SystemKind::Boss, 8, 1.0);
    double e2 = power::energyJoules(model::SystemKind::Boss, 8, 2.0);
    EXPECT_DOUBLE_EQ(e2, 2.0 * e1);
}

} // namespace

// ---------------------------------------------------------------
// Multi-core gangs and host-managed wide queries (Sec. IV-D).
// ---------------------------------------------------------------

namespace wide
{

std::string
orExpression(std::initializer_list<TermId> terms)
{
    std::string expr;
    for (TermId t : terms) {
        if (!expr.empty())
            expr += " OR ";
        expr += "\"t" + std::to_string(t) + "\"";
    }
    return expr;
}

TEST(WideQueries, EightTermUnionUsesGangAndMatchesOracle)
{
    accel::Device dev;
    dev.loadIndex(freshIndex());
    std::string expr =
        orExpression({0, 1, 2, 3, 10, 50, 499, 5});
    // Build the same index term set: term 5 is unmaterialized; use
    // materialized ones only.
    expr = orExpression({0, 1, 2, 3, 10, 50, 499});
    auto outcome = dev.search(expr);
    auto plan = engine::planQuery(
        engine::parseExpression(expr, engine::defaultTermResolver));
    auto oracle =
        engine::naiveTopK(dev.index(), plan, engine::kDefaultTopK);
    ASSERT_EQ(outcome.topk.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i)
        EXPECT_EQ(outcome.topk[i].doc, oracle[i].doc) << i;
    EXPECT_GT(outcome.simSeconds, 0.0);
}

TEST(WideQueries, GangFasterThanSingleCoreBudget)
{
    // A 7-term union on an 8-core device (gang of 2) vs a 1-core
    // device (gang clamped to 1): the gang must not be slower.
    accel::DeviceConfig one;
    one.cores = 1;
    accel::Device devOne(one);
    accel::Device devEight;
    devOne.loadIndex(freshIndex());
    devEight.loadIndex(freshIndex());
    std::string expr = orExpression({0, 1, 2, 3, 10, 50, 499});
    double tOne = devOne.search(expr).simSeconds;
    double tEight = devEight.search(expr).simSeconds;
    EXPECT_LE(tEight, tOne);
}

TEST(WideQueries, HostManagedBeyondSixteenTerms)
{
    // 20 distinct single-term clauses force the host-managed split
    // path; results must still match the functional oracle.
    workload::CorpusConfig cfg;
    cfg.numDocs = 8000;
    cfg.vocabSize = 40;
    cfg.seed = 77;
    workload::Corpus corpus(cfg);
    std::vector<TermId> terms;
    for (TermId t = 0; t < 20; ++t)
        terms.push_back(t);
    accel::Device dev;
    dev.loadIndex(corpus.buildIndex(terms));

    std::string expr;
    for (TermId t : terms) {
        if (!expr.empty())
            expr += " OR ";
        expr += "\"t" + std::to_string(t) + "\"";
    }
    auto outcome = dev.search(expr);
    auto plan = engine::planQuery(
        engine::parseExpression(expr, engine::defaultTermResolver));
    auto oracle =
        engine::naiveTopK(dev.index(), plan, engine::kDefaultTopK);
    ASSERT_EQ(outcome.topk.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(outcome.topk[i].doc, oracle[i].doc) << i;
        EXPECT_NEAR(outcome.topk[i].score, oracle[i].score, 1e-4)
            << i;
    }
}

} // namespace wide

// ---------------------------------------------------------------
// Shift-register top-k queue (the hardware top-k module).
// ---------------------------------------------------------------

namespace topkq
{

TEST(ShiftRegisterTopK, BasicOrdering)
{
    accel::ShiftRegisterTopK q(3);
    EXPECT_FALSE(q.full());
    q.insert(1, 1.0f);
    q.insert(2, 5.0f);
    q.insert(3, 3.0f);
    EXPECT_TRUE(q.full());
    q.insert(4, 4.0f); // evicts doc 1
    auto r = q.sorted();
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0].doc, 2u);
    EXPECT_EQ(r[1].doc, 4u);
    EXPECT_EQ(r[2].doc, 3u);
    EXPECT_FLOAT_EQ(q.threshold(), 3.0f);
}

TEST(ShiftRegisterTopK, RejectsBelowThreshold)
{
    accel::ShiftRegisterTopK q(2);
    EXPECT_TRUE(q.insert(1, 5.0f));
    EXPECT_TRUE(q.insert(2, 4.0f));
    EXPECT_FALSE(q.insert(3, 3.0f));
    EXPECT_FALSE(q.insert(9, 4.0f)); // tie, larger doc: rejected
    EXPECT_TRUE(q.insert(0, 4.0f));  // tie, smaller doc: accepted
}

TEST(ShiftRegisterTopK, EquivalentToHeapOnRandomStreams)
{
    Rng rng(321);
    for (int trial = 0; trial < 20; ++trial) {
        std::size_t k = 1 + rng.below(40);
        accel::ShiftRegisterTopK hw(k);
        engine::TopK sw(k);
        for (int i = 0; i < 500; ++i) {
            DocId d = static_cast<DocId>(rng.below(10000));
            auto s = static_cast<Score>(rng.below(64)) * 0.25f;
            hw.insert(d, s);
            sw.insert(d, s);
        }
        auto a = hw.sorted();
        auto b = sw.sorted();
        ASSERT_EQ(a.size(), b.size()) << "k=" << k;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].doc, b[i].doc)
                << "k=" << k << " rank " << i;
            EXPECT_FLOAT_EQ(a[i].score, b[i].score);
        }
        EXPECT_FLOAT_EQ(hw.threshold(), sw.threshold());
    }
}

} // namespace topkq
