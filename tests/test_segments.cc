/**
 * @file
 * Live-index differential tests: a multi-segment index with
 * tombstone deletes must rank bit-identically to an index rebuilt
 * from scratch over the surviving documents.
 *
 * The sweep crosses segment counts {1,2,4,8} with delete rates
 * {0%, 10%, 50%}; every combination is checked against a clean
 * IndexBuilder rebuild (scores compared with float equality, not
 * tolerance — the rebake-at-publish design promises identical
 * floats), against the naive per-segment oracle, and again after
 * merges compact the segment set. A separate case exercises the
 * Device/ShardedDevice tombstone plumbing: deleting by global docID
 * across a shard group must filter exactly like a single device
 * with the same bitmap.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "boss/device.h"
#include "api/sharded_device.h"
#include "common/rng.h"
#include "engine/segment_search.h"
#include "index/segments/live_index.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace
{

using namespace boss;
using index::segments::LiveIndex;
using index::segments::LiveIndexConfig;

constexpr std::uint32_t kNumDocs = 3200;
constexpr std::uint32_t kVocab = 200;
constexpr std::size_t kTopK = 50;
constexpr std::size_t kQueries = 12;

/** Synthetic token bags, deterministic in the seed. */
std::vector<std::vector<TermId>>
makeDocs(std::uint32_t numDocs, std::uint32_t vocab,
         std::uint64_t seed)
{
    std::vector<std::vector<TermId>> docs(numDocs);
    for (std::uint32_t d = 0; d < numDocs; ++d) {
        Rng rng(splitSeed(seed, d));
        const auto len =
            4 + static_cast<std::uint32_t>(rng.below(30));
        docs[d].reserve(len);
        for (std::uint32_t i = 0; i < len; ++i)
            docs[d].push_back(
                static_cast<TermId>(rng.below(vocab)));
    }
    return docs;
}

struct Rebuilt
{
    std::shared_ptr<index::InvertedIndex> index;
    std::vector<DocId> globals; ///< compact docID -> global docID
};

/**
 * The ground truth: a from-scratch IndexBuilder build over the
 * surviving docs in ascending global order, with every term id in
 * [0, vocab) materialized so any query term is in range.
 */
Rebuilt
rebuildSurvivors(const std::vector<std::vector<TermId>> &docs,
                 const std::vector<bool> &dead, std::uint32_t vocab)
{
    std::vector<std::uint32_t> lengths;
    std::vector<DocId> globals;
    std::map<TermId, index::PostingList> postings;
    for (DocId g = 0; g < docs.size(); ++g) {
        if (dead[g])
            continue;
        const auto local = static_cast<DocId>(lengths.size());
        std::map<TermId, TermFreq> bag;
        for (TermId t : docs[g])
            ++bag[t];
        for (const auto &[t, tf] : bag)
            postings[t].push_back({local, tf});
        lengths.push_back(
            static_cast<std::uint32_t>(docs[g].size()));
        globals.push_back(g);
    }

    index::IndexBuilder builder;
    builder.setDocLengths(lengths);
    for (TermId t = 0; t < vocab; ++t) {
        auto it = postings.find(t);
        builder.addTerm(t, it != postings.end()
                               ? std::move(it->second)
                               : index::PostingList{});
    }
    Rebuilt out;
    out.index = std::make_shared<index::InvertedIndex>(
        builder.build());
    out.globals = std::move(globals);
    return out;
}

std::vector<engine::Result>
rebasedReference(const Rebuilt &ref, const engine::QueryPlan &plan,
                 const engine::ExecFlags &flags)
{
    auto results =
        engine::executeQuery(*ref.index, plan, kTopK, flags);
    for (auto &r : results)
        r.doc = ref.globals[r.doc];
    return results;
}

std::vector<workload::Query>
testQueries(std::uint64_t seed)
{
    workload::QueryWorkloadConfig wcfg;
    wcfg.vocabSize = kVocab;
    wcfg.seed = seed;
    return workload::sampleQueries(wcfg, kQueries);
}

class SegmentsDifferential
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, double>>
{
};

TEST_P(SegmentsDifferential, MatchesCleanRebuildOfSurvivors)
{
    const auto [numSegments, deleteRate] = GetParam();
    const auto docs = makeDocs(kNumDocs, kVocab, 0xD0C5);

    LiveIndexConfig cfg;
    cfg.termBoundHint = kVocab;
    cfg.maxBufferedDocs = kNumDocs / numSegments;
    cfg.maxSegments = 1; // merge policy: compact all the way down
    cfg.mergeFanIn = 4;
    LiveIndex live(cfg);
    for (const auto &tokens : docs)
        live.append(tokens);

    std::vector<bool> dead(kNumDocs, false);
    Rng rng(splitSeed(0xDEAD, numSegments));
    const auto cut = static_cast<std::uint64_t>(deleteRate * 1000);
    for (DocId g = 0; g < kNumDocs; ++g) {
        if (rng.below(1000) < cut) {
            ASSERT_TRUE(live.erase(g));
            dead[g] = true;
        }
    }
    live.refresh();
    ASSERT_EQ(live.segmentCount(), numSegments);

    const Rebuilt ref = rebuildSurvivors(docs, dead, kVocab);
    const auto queries = testQueries(0x5EED);
    const engine::ExecFlags boss;
    engine::ExecFlags exhaustive;
    exhaustive.blockSkip = false;
    exhaustive.wandSkip = false;

    {
        auto snap = live.snapshot();
        ASSERT_TRUE(static_cast<bool>(snap));
        EXPECT_EQ(snap->liveDocs(), ref.index->numDocs());
        EXPECT_EQ(snap->avgDocLen(), ref.index->avgDocLen());
        for (const auto &q : queries) {
            const auto plan = engine::planQuery(q);
            const auto got =
                engine::searchSegments(*snap, plan, kTopK, boss);
            EXPECT_EQ(got, rebasedReference(ref, plan, boss));
            EXPECT_EQ(engine::searchSegments(*snap, plan, kTopK,
                                             exhaustive),
                      got);
            EXPECT_EQ(
                engine::naiveSearchSegments(*snap, plan, kTopK),
                got);
        }
    }

    // Merges compact the survivors in place; every query must be
    // unchanged afterwards (the live statistics do not move).
    std::uint32_t merges = 0;
    while (live.mergeOnce())
        ++merges;
    if (numSegments > 1) {
        EXPECT_GT(merges, 0u);
        EXPECT_LT(live.segmentCount(), numSegments);
    }
    auto snap = live.snapshot();
    EXPECT_EQ(snap->liveDocs(), ref.index->numDocs());
    for (const auto &q : queries) {
        const auto plan = engine::planQuery(q);
        EXPECT_EQ(engine::searchSegments(*snap, plan, kTopK, boss),
                  rebasedReference(ref, plan, boss));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentsDifferential,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(0.0, 0.1, 0.5)));

TEST(Segments, BufferedDocsBecomeVisibleAtRefresh)
{
    LiveIndexConfig cfg;
    cfg.termBoundHint = 8;
    cfg.maxBufferedDocs = 1024; // never auto-bakes in this test
    LiveIndex live(cfg);

    const DocId a = live.append({1, 2, 3});
    EXPECT_EQ(live.bufferedDocs(), 1u);

    engine::QueryPlan plan;
    plan.groups = {{1}};
    plan.allTerms = {1};
    {
        auto snap = live.snapshot();
        EXPECT_TRUE(engine::searchSegments(*snap, plan, kTopK, {})
                        .empty());
    }

    live.refresh();
    EXPECT_EQ(live.bufferedDocs(), 0u);
    EXPECT_EQ(live.segmentCount(), 1u);
    {
        auto snap = live.snapshot();
        const auto got =
            engine::searchSegments(*snap, plan, kTopK, {});
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0].doc, a);
    }

    // Erase inside the buffer: baked then immediately tombstoned.
    const DocId b = live.append({1, 1, 4});
    EXPECT_TRUE(live.erase(b));
    EXPECT_FALSE(live.erase(b));
    live.refresh();
    {
        auto snap = live.snapshot();
        const auto got =
            engine::searchSegments(*snap, plan, kTopK, {});
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0].doc, a);
    }

    // Deleting the only survivor leaves an empty result set and a
    // sane (cnt == 0 -> avg 1.0) statistics fold.
    EXPECT_TRUE(live.erase(a));
    live.refresh();
    {
        auto snap = live.snapshot();
        EXPECT_EQ(snap->liveDocs(), 0u);
        EXPECT_EQ(snap->avgDocLen(), 1.0);
        EXPECT_TRUE(engine::searchSegments(*snap, plan, kTopK, {})
                        .empty());
    }
    EXPECT_FALSE(live.erase(kNumDocs + 1000)); // unknown id
}

TEST(Segments, EpochsAdvanceAndOldSnapshotsStayValid)
{
    LiveIndexConfig cfg;
    cfg.termBoundHint = 4;
    LiveIndex live(cfg);
    const auto e0 = live.epoch();

    live.append({1, 2});
    live.refresh();
    auto old = live.snapshot();
    EXPECT_EQ(old->epoch(), e0 + 1);

    live.append({1, 3});
    live.refresh();
    auto fresh = live.snapshot();
    EXPECT_EQ(fresh->epoch(), e0 + 2);

    // The old epoch still serves its original view.
    engine::QueryPlan plan;
    plan.groups = {{1}};
    plan.allTerms = {1};
    EXPECT_EQ(
        engine::searchSegments(*old, plan, kTopK, {}).size(), 1u);
    EXPECT_EQ(
        engine::searchSegments(*fresh, plan, kTopK, {}).size(), 2u);

    // Idempotent refresh: nothing changed, no new epoch.
    live.refresh();
    EXPECT_EQ(live.epoch(), e0 + 2);
}

TEST(Segments, ShardedDeleteDocsMatchesSingleDeviceTombstones)
{
    workload::CorpusConfig ccfg;
    ccfg.numDocs = 2000;
    ccfg.vocabSize = 500;
    ccfg.seed = 97;
    workload::Corpus corpus(ccfg);

    workload::QueryWorkloadConfig wcfg;
    wcfg.vocabSize = ccfg.vocabSize;
    wcfg.seed = 3;
    const auto queries = workload::sampleQueries(wcfg, 10);
    const auto terms = workload::collectTerms(queries);

    std::vector<DocId> deletes;
    Rng rng(0xF11E);
    for (DocId d = 0; d < ccfg.numDocs; ++d) {
        if (rng.below(10) == 0)
            deletes.push_back(d);
    }

    accel::Device device;
    device.loadIndex(corpus.buildIndex(terms));
    auto tombs =
        std::make_shared<index::TombstoneSet>(ccfg.numDocs);
    for (DocId d : deletes)
        tombs->markDeleted(d);
    device.setTombstones(tombs);

    api::ShardedDeviceConfig scfg;
    scfg.shards = 3;
    api::ShardedDevice sharded(scfg);
    sharded.loadShards(corpus.buildShardedIndex(terms, 3));
    sharded.deleteDocs(deletes);

    for (const auto &q : queries) {
        const auto single = device.search(q).topk;
        EXPECT_EQ(sharded.search(q).topk, single);
        // And against the oracle on the monolithic index.
        EXPECT_EQ(engine::naiveTopK(device.index(),
                                    engine::planQuery(q),
                                    device.config().k, tombs.get()),
                  single);
        for (const auto &r : single)
            EXPECT_FALSE(tombs->deleted(r.doc));
    }
}

} // namespace
