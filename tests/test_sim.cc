/**
 * @file
 * Unit tests for the discrete-event kernel and clock domains.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/sim_object.h"

namespace
{

using boss::Tick;
using boss::sim::ClockDomain;
using boss::sim::EventQueue;

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    Tick end = eq.run();
    EXPECT_EQ(end, 30u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbacksCanSchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    Tick end = eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 6u);
}

TEST(EventQueueTest, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(ClockDomainTest, OneGigahertz)
{
    ClockDomain clk(1e9);
    EXPECT_EQ(clk.period(), 1000u);
    EXPECT_EQ(clk.toTicks(5), 5000u);
    EXPECT_EQ(clk.toCycles(5000), 5u);
    EXPECT_EQ(clk.toCycles(5001), 6u); // rounds up
    EXPECT_DOUBLE_EQ(clk.toSeconds(1'000'000'000), 1.0);
}

TEST(ClockDomainTest, NonIntegralPeriodRounds)
{
    ClockDomain clk(2.7e9); // 370.37 ps -> 370 ps
    EXPECT_EQ(clk.period(), 370u);
}

TEST(SimObjectTest, RegistersStatsSubgroup)
{
    EventQueue eq;
    boss::stats::Group root("top");

    class Widget : public boss::sim::SimObject
    {
      public:
        Widget(EventQueue &eq, boss::stats::Group &parent)
            : SimObject("widget", eq, parent)
        {
            statsGroup().addCounter("ticks", &ticks_);
        }
        void bump() { ++ticks_; }

      private:
        boss::stats::Counter ticks_;
    };

    Widget w(eq, root);
    w.bump();
    w.bump();
    EXPECT_EQ(root.counterValue("widget.ticks"), 2u);
    EXPECT_EQ(w.name(), "widget");
}

} // namespace
