# Empty compiler generated dependencies file for pooled_memory_scaleout.
# This may be replaced when dependencies are built.
