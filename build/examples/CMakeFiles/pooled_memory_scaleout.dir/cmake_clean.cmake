file(REMOVE_RECURSE
  "CMakeFiles/pooled_memory_scaleout.dir/pooled_memory_scaleout.cpp.o"
  "CMakeFiles/pooled_memory_scaleout.dir/pooled_memory_scaleout.cpp.o.d"
  "pooled_memory_scaleout"
  "pooled_memory_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pooled_memory_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
