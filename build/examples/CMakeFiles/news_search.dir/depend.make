# Empty dependencies file for news_search.
# This may be replaced when dependencies are built.
