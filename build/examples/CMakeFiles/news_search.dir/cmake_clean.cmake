file(REMOVE_RECURSE
  "CMakeFiles/news_search.dir/news_search.cpp.o"
  "CMakeFiles/news_search.dir/news_search.cpp.o.d"
  "news_search"
  "news_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
