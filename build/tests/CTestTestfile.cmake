# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_datapath[1]_include.cmake")
include("/root/repo/build/tests/test_index[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_device_api[1]_include.cmake")
include("/root/repo/build/tests/test_streams[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
