
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_model.cc" "tests/CMakeFiles/test_model.dir/test_model.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/test_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/boss_model.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/boss_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/boss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/boss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/boss_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/boss_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/boss_index.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/boss_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/boss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
