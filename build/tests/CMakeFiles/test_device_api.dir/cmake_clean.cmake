file(REMOVE_RECURSE
  "CMakeFiles/test_device_api.dir/test_device_api.cc.o"
  "CMakeFiles/test_device_api.dir/test_device_api.cc.o.d"
  "test_device_api"
  "test_device_api.pdb"
  "test_device_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
