# Empty compiler generated dependencies file for boss_search.
# This may be replaced when dependencies are built.
