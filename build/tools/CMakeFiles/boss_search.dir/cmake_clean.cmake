file(REMOVE_RECURSE
  "CMakeFiles/boss_search.dir/boss_search.cc.o"
  "CMakeFiles/boss_search.dir/boss_search.cc.o.d"
  "boss_search"
  "boss_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
