file(REMOVE_RECURSE
  "CMakeFiles/boss_indexer.dir/boss_indexer.cc.o"
  "CMakeFiles/boss_indexer.dir/boss_indexer.cc.o.d"
  "boss_indexer"
  "boss_indexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_indexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
