# Empty dependencies file for boss_indexer.
# This may be replaced when dependencies are built.
