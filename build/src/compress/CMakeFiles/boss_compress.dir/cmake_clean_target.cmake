file(REMOVE_RECURSE
  "libboss_compress.a"
)
