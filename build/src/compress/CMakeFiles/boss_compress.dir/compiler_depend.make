# Empty compiler generated dependencies file for boss_compress.
# This may be replaced when dependencies are built.
