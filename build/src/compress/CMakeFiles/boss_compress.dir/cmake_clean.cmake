file(REMOVE_RECURSE
  "CMakeFiles/boss_compress.dir/bitpacking.cc.o"
  "CMakeFiles/boss_compress.dir/bitpacking.cc.o.d"
  "CMakeFiles/boss_compress.dir/codec.cc.o"
  "CMakeFiles/boss_compress.dir/codec.cc.o.d"
  "CMakeFiles/boss_compress.dir/datapath.cc.o"
  "CMakeFiles/boss_compress.dir/datapath.cc.o.d"
  "CMakeFiles/boss_compress.dir/pfordelta.cc.o"
  "CMakeFiles/boss_compress.dir/pfordelta.cc.o.d"
  "CMakeFiles/boss_compress.dir/simple16.cc.o"
  "CMakeFiles/boss_compress.dir/simple16.cc.o.d"
  "CMakeFiles/boss_compress.dir/simple8b.cc.o"
  "CMakeFiles/boss_compress.dir/simple8b.cc.o.d"
  "CMakeFiles/boss_compress.dir/varbyte.cc.o"
  "CMakeFiles/boss_compress.dir/varbyte.cc.o.d"
  "libboss_compress.a"
  "libboss_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
