
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitpacking.cc" "src/compress/CMakeFiles/boss_compress.dir/bitpacking.cc.o" "gcc" "src/compress/CMakeFiles/boss_compress.dir/bitpacking.cc.o.d"
  "/root/repo/src/compress/codec.cc" "src/compress/CMakeFiles/boss_compress.dir/codec.cc.o" "gcc" "src/compress/CMakeFiles/boss_compress.dir/codec.cc.o.d"
  "/root/repo/src/compress/datapath.cc" "src/compress/CMakeFiles/boss_compress.dir/datapath.cc.o" "gcc" "src/compress/CMakeFiles/boss_compress.dir/datapath.cc.o.d"
  "/root/repo/src/compress/pfordelta.cc" "src/compress/CMakeFiles/boss_compress.dir/pfordelta.cc.o" "gcc" "src/compress/CMakeFiles/boss_compress.dir/pfordelta.cc.o.d"
  "/root/repo/src/compress/simple16.cc" "src/compress/CMakeFiles/boss_compress.dir/simple16.cc.o" "gcc" "src/compress/CMakeFiles/boss_compress.dir/simple16.cc.o.d"
  "/root/repo/src/compress/simple8b.cc" "src/compress/CMakeFiles/boss_compress.dir/simple8b.cc.o" "gcc" "src/compress/CMakeFiles/boss_compress.dir/simple8b.cc.o.d"
  "/root/repo/src/compress/varbyte.cc" "src/compress/CMakeFiles/boss_compress.dir/varbyte.cc.o" "gcc" "src/compress/CMakeFiles/boss_compress.dir/varbyte.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/boss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
