# Empty compiler generated dependencies file for boss_common.
# This may be replaced when dependencies are built.
