file(REMOVE_RECURSE
  "libboss_common.a"
)
