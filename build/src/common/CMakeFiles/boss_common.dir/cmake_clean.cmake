file(REMOVE_RECURSE
  "CMakeFiles/boss_common.dir/logging.cc.o"
  "CMakeFiles/boss_common.dir/logging.cc.o.d"
  "CMakeFiles/boss_common.dir/rng.cc.o"
  "CMakeFiles/boss_common.dir/rng.cc.o.d"
  "libboss_common.a"
  "libboss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
