# CMake generated Testfile for 
# Source directory: /root/repo/src/iiu
# Build directory: /root/repo/build/src/iiu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
