# Empty dependencies file for boss_accel.
# This may be replaced when dependencies are built.
