file(REMOVE_RECURSE
  "CMakeFiles/boss_accel.dir/device.cc.o"
  "CMakeFiles/boss_accel.dir/device.cc.o.d"
  "libboss_accel.a"
  "libboss_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
