file(REMOVE_RECURSE
  "libboss_accel.a"
)
