file(REMOVE_RECURSE
  "libboss_mem.a"
)
