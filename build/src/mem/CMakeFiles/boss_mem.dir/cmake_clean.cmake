file(REMOVE_RECURSE
  "CMakeFiles/boss_mem.dir/memory_system.cc.o"
  "CMakeFiles/boss_mem.dir/memory_system.cc.o.d"
  "libboss_mem.a"
  "libboss_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
