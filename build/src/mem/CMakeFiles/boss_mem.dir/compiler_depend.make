# Empty compiler generated dependencies file for boss_mem.
# This may be replaced when dependencies are built.
