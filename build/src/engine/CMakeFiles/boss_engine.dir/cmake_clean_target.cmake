file(REMOVE_RECURSE
  "libboss_engine.a"
)
