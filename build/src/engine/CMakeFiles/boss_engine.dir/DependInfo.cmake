
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cursor.cc" "src/engine/CMakeFiles/boss_engine.dir/cursor.cc.o" "gcc" "src/engine/CMakeFiles/boss_engine.dir/cursor.cc.o.d"
  "/root/repo/src/engine/execute.cc" "src/engine/CMakeFiles/boss_engine.dir/execute.cc.o" "gcc" "src/engine/CMakeFiles/boss_engine.dir/execute.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/boss_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/boss_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/streams.cc" "src/engine/CMakeFiles/boss_engine.dir/streams.cc.o" "gcc" "src/engine/CMakeFiles/boss_engine.dir/streams.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/boss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/boss_index.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/boss_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/boss_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
