# Empty dependencies file for boss_engine.
# This may be replaced when dependencies are built.
