file(REMOVE_RECURSE
  "CMakeFiles/boss_engine.dir/cursor.cc.o"
  "CMakeFiles/boss_engine.dir/cursor.cc.o.d"
  "CMakeFiles/boss_engine.dir/execute.cc.o"
  "CMakeFiles/boss_engine.dir/execute.cc.o.d"
  "CMakeFiles/boss_engine.dir/plan.cc.o"
  "CMakeFiles/boss_engine.dir/plan.cc.o.d"
  "CMakeFiles/boss_engine.dir/streams.cc.o"
  "CMakeFiles/boss_engine.dir/streams.cc.o.d"
  "libboss_engine.a"
  "libboss_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
