file(REMOVE_RECURSE
  "CMakeFiles/boss_index.dir/block_decoder.cc.o"
  "CMakeFiles/boss_index.dir/block_decoder.cc.o.d"
  "CMakeFiles/boss_index.dir/inverted_index.cc.o"
  "CMakeFiles/boss_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/boss_index.dir/lexicon.cc.o"
  "CMakeFiles/boss_index.dir/lexicon.cc.o.d"
  "CMakeFiles/boss_index.dir/memory_layout.cc.o"
  "CMakeFiles/boss_index.dir/memory_layout.cc.o.d"
  "CMakeFiles/boss_index.dir/serialize.cc.o"
  "CMakeFiles/boss_index.dir/serialize.cc.o.d"
  "CMakeFiles/boss_index.dir/text_builder.cc.o"
  "CMakeFiles/boss_index.dir/text_builder.cc.o.d"
  "libboss_index.a"
  "libboss_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
