# Empty dependencies file for boss_index.
# This may be replaced when dependencies are built.
