file(REMOVE_RECURSE
  "libboss_index.a"
)
