
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/block_decoder.cc" "src/index/CMakeFiles/boss_index.dir/block_decoder.cc.o" "gcc" "src/index/CMakeFiles/boss_index.dir/block_decoder.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/index/CMakeFiles/boss_index.dir/inverted_index.cc.o" "gcc" "src/index/CMakeFiles/boss_index.dir/inverted_index.cc.o.d"
  "/root/repo/src/index/lexicon.cc" "src/index/CMakeFiles/boss_index.dir/lexicon.cc.o" "gcc" "src/index/CMakeFiles/boss_index.dir/lexicon.cc.o.d"
  "/root/repo/src/index/memory_layout.cc" "src/index/CMakeFiles/boss_index.dir/memory_layout.cc.o" "gcc" "src/index/CMakeFiles/boss_index.dir/memory_layout.cc.o.d"
  "/root/repo/src/index/serialize.cc" "src/index/CMakeFiles/boss_index.dir/serialize.cc.o" "gcc" "src/index/CMakeFiles/boss_index.dir/serialize.cc.o.d"
  "/root/repo/src/index/text_builder.cc" "src/index/CMakeFiles/boss_index.dir/text_builder.cc.o" "gcc" "src/index/CMakeFiles/boss_index.dir/text_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/boss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/boss_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
