# Empty dependencies file for boss_model.
# This may be replaced when dependencies are built.
