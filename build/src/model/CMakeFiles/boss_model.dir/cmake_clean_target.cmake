file(REMOVE_RECURSE
  "libboss_model.a"
)
