file(REMOVE_RECURSE
  "CMakeFiles/boss_model.dir/core.cc.o"
  "CMakeFiles/boss_model.dir/core.cc.o.d"
  "CMakeFiles/boss_model.dir/runner.cc.o"
  "CMakeFiles/boss_model.dir/runner.cc.o.d"
  "CMakeFiles/boss_model.dir/system.cc.o"
  "CMakeFiles/boss_model.dir/system.cc.o.d"
  "CMakeFiles/boss_model.dir/trace.cc.o"
  "CMakeFiles/boss_model.dir/trace.cc.o.d"
  "libboss_model.a"
  "libboss_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
