# Empty compiler generated dependencies file for boss_power.
# This may be replaced when dependencies are built.
