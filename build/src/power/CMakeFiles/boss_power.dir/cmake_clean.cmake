file(REMOVE_RECURSE
  "CMakeFiles/boss_power.dir/power.cc.o"
  "CMakeFiles/boss_power.dir/power.cc.o.d"
  "libboss_power.a"
  "libboss_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
