file(REMOVE_RECURSE
  "libboss_power.a"
)
