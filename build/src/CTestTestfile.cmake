# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("sim")
subdirs("compress")
subdirs("index")
subdirs("workload")
subdirs("engine")
subdirs("mem")
subdirs("model")
subdirs("boss")
subdirs("iiu")
subdirs("lucene")
subdirs("power")
subdirs("api")
