file(REMOVE_RECURSE
  "CMakeFiles/boss_sim.dir/event_queue.cc.o"
  "CMakeFiles/boss_sim.dir/event_queue.cc.o.d"
  "libboss_sim.a"
  "libboss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
