file(REMOVE_RECURSE
  "libboss_sim.a"
)
