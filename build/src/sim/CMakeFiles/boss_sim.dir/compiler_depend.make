# Empty compiler generated dependencies file for boss_sim.
# This may be replaced when dependencies are built.
