file(REMOVE_RECURSE
  "CMakeFiles/boss_api.dir/offload.cc.o"
  "CMakeFiles/boss_api.dir/offload.cc.o.d"
  "libboss_api.a"
  "libboss_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
