# Empty compiler generated dependencies file for boss_api.
# This may be replaced when dependencies are built.
