file(REMOVE_RECURSE
  "libboss_api.a"
)
