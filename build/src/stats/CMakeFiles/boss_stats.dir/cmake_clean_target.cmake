file(REMOVE_RECURSE
  "libboss_stats.a"
)
