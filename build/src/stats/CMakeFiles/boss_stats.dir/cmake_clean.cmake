file(REMOVE_RECURSE
  "CMakeFiles/boss_stats.dir/stats.cc.o"
  "CMakeFiles/boss_stats.dir/stats.cc.o.d"
  "libboss_stats.a"
  "libboss_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
