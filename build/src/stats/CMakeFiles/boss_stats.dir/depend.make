# Empty dependencies file for boss_stats.
# This may be replaced when dependencies are built.
