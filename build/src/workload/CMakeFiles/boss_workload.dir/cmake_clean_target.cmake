file(REMOVE_RECURSE
  "libboss_workload.a"
)
