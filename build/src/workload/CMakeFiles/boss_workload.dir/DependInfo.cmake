
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/corpus.cc" "src/workload/CMakeFiles/boss_workload.dir/corpus.cc.o" "gcc" "src/workload/CMakeFiles/boss_workload.dir/corpus.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/workload/CMakeFiles/boss_workload.dir/queries.cc.o" "gcc" "src/workload/CMakeFiles/boss_workload.dir/queries.cc.o.d"
  "/root/repo/src/workload/synthetic_streams.cc" "src/workload/CMakeFiles/boss_workload.dir/synthetic_streams.cc.o" "gcc" "src/workload/CMakeFiles/boss_workload.dir/synthetic_streams.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/boss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/boss_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/boss_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
