# Empty compiler generated dependencies file for boss_workload.
# This may be replaced when dependencies are built.
