file(REMOVE_RECURSE
  "CMakeFiles/boss_workload.dir/corpus.cc.o"
  "CMakeFiles/boss_workload.dir/corpus.cc.o.d"
  "CMakeFiles/boss_workload.dir/queries.cc.o"
  "CMakeFiles/boss_workload.dir/queries.cc.o.d"
  "CMakeFiles/boss_workload.dir/synthetic_streams.cc.o"
  "CMakeFiles/boss_workload.dir/synthetic_streams.cc.o.d"
  "libboss_workload.a"
  "libboss_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
