file(REMOVE_RECURSE
  "CMakeFiles/table03_area_power.dir/table03_area_power.cc.o"
  "CMakeFiles/table03_area_power.dir/table03_area_power.cc.o.d"
  "table03_area_power"
  "table03_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
