# Empty dependencies file for table03_area_power.
# This may be replaced when dependencies are built.
