# Empty compiler generated dependencies file for table01_config.
# This may be replaced when dependencies are built.
