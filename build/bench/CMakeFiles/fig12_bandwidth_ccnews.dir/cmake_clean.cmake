file(REMOVE_RECURSE
  "CMakeFiles/fig12_bandwidth_ccnews.dir/fig12_bandwidth_ccnews.cc.o"
  "CMakeFiles/fig12_bandwidth_ccnews.dir/fig12_bandwidth_ccnews.cc.o.d"
  "fig12_bandwidth_ccnews"
  "fig12_bandwidth_ccnews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_bandwidth_ccnews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
