# Empty dependencies file for fig12_bandwidth_ccnews.
# This may be replaced when dependencies are built.
