file(REMOVE_RECURSE
  "CMakeFiles/fig14_evaluated_docs.dir/fig14_evaluated_docs.cc.o"
  "CMakeFiles/fig14_evaluated_docs.dir/fig14_evaluated_docs.cc.o.d"
  "fig14_evaluated_docs"
  "fig14_evaluated_docs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_evaluated_docs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
