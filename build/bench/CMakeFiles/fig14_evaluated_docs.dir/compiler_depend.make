# Empty compiler generated dependencies file for fig14_evaluated_docs.
# This may be replaced when dependencies are built.
