file(REMOVE_RECURSE
  "CMakeFiles/fig11_bandwidth_clueweb.dir/fig11_bandwidth_clueweb.cc.o"
  "CMakeFiles/fig11_bandwidth_clueweb.dir/fig11_bandwidth_clueweb.cc.o.d"
  "fig11_bandwidth_clueweb"
  "fig11_bandwidth_clueweb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bandwidth_clueweb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
