# Empty dependencies file for fig11_bandwidth_clueweb.
# This may be replaced when dependencies are built.
