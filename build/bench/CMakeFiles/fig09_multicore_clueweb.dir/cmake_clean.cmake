file(REMOVE_RECURSE
  "CMakeFiles/fig09_multicore_clueweb.dir/fig09_multicore_clueweb.cc.o"
  "CMakeFiles/fig09_multicore_clueweb.dir/fig09_multicore_clueweb.cc.o.d"
  "fig09_multicore_clueweb"
  "fig09_multicore_clueweb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_multicore_clueweb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
