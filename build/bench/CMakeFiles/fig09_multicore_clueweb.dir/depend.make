# Empty dependencies file for fig09_multicore_clueweb.
# This may be replaced when dependencies are built.
