file(REMOVE_RECURSE
  "CMakeFiles/ablation_banked_dram.dir/ablation_banked_dram.cc.o"
  "CMakeFiles/ablation_banked_dram.dir/ablation_banked_dram.cc.o.d"
  "ablation_banked_dram"
  "ablation_banked_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_banked_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
