# Empty dependencies file for ablation_banked_dram.
# This may be replaced when dependencies are built.
