# Empty compiler generated dependencies file for ablation_topk_k.
# This may be replaced when dependencies are built.
