file(REMOVE_RECURSE
  "CMakeFiles/ablation_topk_k.dir/ablation_topk_k.cc.o"
  "CMakeFiles/ablation_topk_k.dir/ablation_topk_k.cc.o.d"
  "ablation_topk_k"
  "ablation_topk_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_topk_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
