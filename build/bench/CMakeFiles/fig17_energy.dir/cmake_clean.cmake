file(REMOVE_RECURSE
  "CMakeFiles/fig17_energy.dir/fig17_energy.cc.o"
  "CMakeFiles/fig17_energy.dir/fig17_energy.cc.o.d"
  "fig17_energy"
  "fig17_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
