file(REMOVE_RECURSE
  "CMakeFiles/ablation_latency_sched.dir/ablation_latency_sched.cc.o"
  "CMakeFiles/ablation_latency_sched.dir/ablation_latency_sched.cc.o.d"
  "ablation_latency_sched"
  "ablation_latency_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
