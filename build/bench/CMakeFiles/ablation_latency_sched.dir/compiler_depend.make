# Empty compiler generated dependencies file for ablation_latency_sched.
# This may be replaced when dependencies are built.
