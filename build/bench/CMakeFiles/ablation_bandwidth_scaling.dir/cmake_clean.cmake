file(REMOVE_RECURSE
  "CMakeFiles/ablation_bandwidth_scaling.dir/ablation_bandwidth_scaling.cc.o"
  "CMakeFiles/ablation_bandwidth_scaling.dir/ablation_bandwidth_scaling.cc.o.d"
  "ablation_bandwidth_scaling"
  "ablation_bandwidth_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bandwidth_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
