# Empty dependencies file for ablation_bandwidth_scaling.
# This may be replaced when dependencies are built.
