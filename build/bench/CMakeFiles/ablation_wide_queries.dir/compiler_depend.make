# Empty compiler generated dependencies file for ablation_wide_queries.
# This may be replaced when dependencies are built.
