file(REMOVE_RECURSE
  "CMakeFiles/ablation_wide_queries.dir/ablation_wide_queries.cc.o"
  "CMakeFiles/ablation_wide_queries.dir/ablation_wide_queries.cc.o.d"
  "ablation_wide_queries"
  "ablation_wide_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wide_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
