# Empty dependencies file for fig15_memory_accesses.
# This may be replaced when dependencies are built.
