file(REMOVE_RECURSE
  "CMakeFiles/fig15_memory_accesses.dir/fig15_memory_accesses.cc.o"
  "CMakeFiles/fig15_memory_accesses.dir/fig15_memory_accesses.cc.o.d"
  "fig15_memory_accesses"
  "fig15_memory_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_memory_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
