file(REMOVE_RECURSE
  "CMakeFiles/fig10_multicore_ccnews.dir/fig10_multicore_ccnews.cc.o"
  "CMakeFiles/fig10_multicore_ccnews.dir/fig10_multicore_ccnews.cc.o.d"
  "fig10_multicore_ccnews"
  "fig10_multicore_ccnews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multicore_ccnews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
