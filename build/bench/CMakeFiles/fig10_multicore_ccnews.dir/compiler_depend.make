# Empty compiler generated dependencies file for fig10_multicore_ccnews.
# This may be replaced when dependencies are built.
