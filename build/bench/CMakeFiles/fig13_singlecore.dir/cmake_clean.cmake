file(REMOVE_RECURSE
  "CMakeFiles/fig13_singlecore.dir/fig13_singlecore.cc.o"
  "CMakeFiles/fig13_singlecore.dir/fig13_singlecore.cc.o.d"
  "fig13_singlecore"
  "fig13_singlecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_singlecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
