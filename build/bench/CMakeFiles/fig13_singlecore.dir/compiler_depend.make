# Empty compiler generated dependencies file for fig13_singlecore.
# This may be replaced when dependencies are built.
