file(REMOVE_RECURSE
  "CMakeFiles/fig16_dram_vs_scm.dir/fig16_dram_vs_scm.cc.o"
  "CMakeFiles/fig16_dram_vs_scm.dir/fig16_dram_vs_scm.cc.o.d"
  "fig16_dram_vs_scm"
  "fig16_dram_vs_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_dram_vs_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
