# Empty compiler generated dependencies file for fig16_dram_vs_scm.
# This may be replaced when dependencies are built.
